//! A point-to-point packet fabric connecting TNIC devices.
//!
//! The fabric is deliberately hostile-configurable: links can delay, drop,
//! duplicate and reorder packets (the paper's threat model lets the adversary
//! control the network, §3.2). The RoCE reliable transport and the attestation
//! counters must mask or detect all of it.

use crate::adversary::Adversary;
use tnic_device::roce::packet::RocePacket;
use tnic_device::types::Ipv4Addr;
use tnic_sim::event::EventQueue;
use tnic_sim::latency::LatencyModel;
use tnic_sim::rng::DetRng;
use tnic_sim::time::{SimDuration, SimInstant};

/// Behaviour of a directed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Propagation + switching delay.
    pub delay: LatencyModel,
    /// Probability that a packet is silently dropped.
    pub drop_probability: f64,
    /// Probability that a packet is delivered twice.
    pub duplicate_probability: f64,
    /// Extra random delay added with `reorder_probability`, causing packets to
    /// overtake each other.
    pub reorder_probability: f64,
    /// The extra delay applied to reordered packets.
    pub reorder_extra: SimDuration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::reliable()
    }
}

impl LinkConfig {
    /// A well-behaved 100 Gbps-class datacenter link (~2 µs propagation).
    #[must_use]
    pub fn reliable() -> Self {
        LinkConfig {
            delay: LatencyModel::uniform(
                SimDuration::from_nanos(1_800),
                SimDuration::from_nanos(2_400),
            ),
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_extra: SimDuration::ZERO,
        }
    }

    /// A lossy link useful for exercising retransmission.
    #[must_use]
    pub fn lossy(drop_probability: f64) -> Self {
        LinkConfig {
            drop_probability,
            ..Self::reliable()
        }
    }

    /// A link that reorders and duplicates aggressively.
    #[must_use]
    pub fn chaotic() -> Self {
        LinkConfig {
            delay: LatencyModel::uniform(
                SimDuration::from_nanos(1_500),
                SimDuration::from_nanos(4_000),
            ),
            drop_probability: 0.05,
            duplicate_probability: 0.05,
            reorder_probability: 0.2,
            reorder_extra: SimDuration::from_micros(20),
        }
    }
}

/// A packet in flight towards a destination node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InFlight {
    /// Destination node address.
    pub dst: Ipv4Addr,
    /// The packet being delivered.
    pub packet: RocePacket,
}

/// Counters describing what the fabric did to traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Packets accepted for delivery.
    pub injected: u64,
    /// Packets dropped by link loss or the adversary.
    pub dropped: u64,
    /// Extra copies created by duplication or replay.
    pub duplicated: u64,
    /// Packets whose content the adversary modified.
    pub tampered: u64,
    /// Packets delivered to their destination.
    pub delivered: u64,
}

/// The simulated network fabric.
pub struct NetworkFabric {
    default_link: LinkConfig,
    links: Vec<(Ipv4Addr, Ipv4Addr, LinkConfig)>,
    queue: EventQueue<InFlight>,
    rng: DetRng,
    adversary: Adversary,
    stats: FabricStats,
}

impl std::fmt::Debug for NetworkFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkFabric")
            .field("links", &self.links.len())
            .field("in_flight", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl NetworkFabric {
    /// Creates a fabric where every pair of nodes uses `default_link`.
    #[must_use]
    pub fn new(default_link: LinkConfig, seed: u64) -> Self {
        NetworkFabric {
            default_link,
            links: Vec::new(),
            queue: EventQueue::new(),
            rng: DetRng::new(seed),
            adversary: Adversary::Honest,
            stats: FabricStats::default(),
        }
    }

    /// A fabric with reliable links.
    #[must_use]
    pub fn reliable(seed: u64) -> Self {
        Self::new(LinkConfig::reliable(), seed)
    }

    /// Overrides the link configuration for the directed pair `src → dst`.
    pub fn configure_link(&mut self, src: Ipv4Addr, dst: Ipv4Addr, config: LinkConfig) {
        self.links.retain(|(s, d, _)| !(*s == src && *d == dst));
        self.links.push((src, dst, config));
    }

    /// Installs a network adversary.
    pub fn set_adversary(&mut self, adversary: Adversary) {
        self.adversary = adversary;
    }

    fn link(&self, src: Ipv4Addr, dst: Ipv4Addr) -> &LinkConfig {
        self.links
            .iter()
            .find(|(s, d, _)| *s == src && *d == dst)
            .map_or(&self.default_link, |(_, _, c)| c)
    }

    /// Injects a packet from `src` towards `dst` at virtual time `now`.
    pub fn inject(&mut self, src: Ipv4Addr, dst: Ipv4Addr, packet: RocePacket, now: SimInstant) {
        self.stats.injected += 1;
        let actions = self.adversary.apply(&packet, &mut self.rng);
        if actions.is_empty() {
            self.stats.dropped += 1;
            tnic_obs::trace_event!(
                tnic_obs::EventKind::NetDrop,
                at_us: now.as_micros(),
                node: u32::from_be_bytes(dst.0),
                peer: u32::from_be_bytes(src.0),
                seq: u64::from(packet.header.psn)
            );
            return;
        }
        if actions.len() > 1 {
            self.stats.duplicated += (actions.len() - 1) as u64;
        }
        let link = self.link(src, dst).clone();
        for adjusted in actions {
            if adjusted != packet {
                self.stats.tampered += 1;
            }
            if self.rng.chance(link.drop_probability) {
                self.stats.dropped += 1;
                tnic_obs::trace_event!(
                    tnic_obs::EventKind::NetDrop,
                    at_us: now.as_micros(),
                    node: u32::from_be_bytes(dst.0),
                    peer: u32::from_be_bytes(src.0),
                    seq: u64::from(adjusted.header.psn)
                );
                continue;
            }
            let mut delay = link.delay.sample(&mut self.rng);
            if self.rng.chance(link.reorder_probability) {
                delay += link.reorder_extra;
            }
            let copies = if self.rng.chance(link.duplicate_probability) {
                self.stats.duplicated += 1;
                2
            } else {
                1
            };
            for _ in 0..copies {
                self.queue.schedule(
                    now + delay,
                    InFlight {
                        dst,
                        packet: adjusted.clone(),
                    },
                );
            }
        }
    }

    /// Removes and returns all packets whose delivery time is `<= now`.
    pub fn deliver_due(&mut self, now: SimInstant) -> Vec<(SimInstant, InFlight)> {
        let mut out = Vec::new();
        while let Some(at) = self.queue.peek_time() {
            if at > now {
                break;
            }
            let (at, flight) = self.queue.pop().expect("peeked entry exists");
            self.stats.delivered += 1;
            tnic_obs::trace_event!(
                tnic_obs::EventKind::NetDeliver,
                at_us: at.as_micros(),
                node: u32::from_be_bytes(flight.dst.0),
                peer: u32::from_be_bytes(flight.packet.header.src_ip.0),
                seq: u64::from(flight.packet.header.psn),
                aux: flight.packet.payload.len() as u64
            );
            out.push((at, flight));
        }
        out
    }

    /// Time of the next pending delivery, if any.
    #[must_use]
    pub fn next_delivery(&self) -> Option<SimInstant> {
        self.queue.peek_time()
    }

    /// Number of packets currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Traffic statistics.
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnic_device::roce::packet::{PacketHeader, RdmaOpcode};
    use tnic_device::types::{DeviceId, MacAddr, QueuePairId};

    fn packet(psn: u32) -> RocePacket {
        RocePacket {
            header: PacketHeader {
                src_mac: MacAddr::from_device(DeviceId(1)),
                dst_mac: MacAddr::from_device(DeviceId(2)),
                src_ip: Ipv4Addr::from_device(DeviceId(1)),
                dst_ip: Ipv4Addr::from_device(DeviceId(2)),
                udp_port: 4791,
                opcode: RdmaOpcode::Write,
                qp: QueuePairId(1),
                psn,
                msn: psn,
                ack_psn: 0,
            },
            payload: vec![psn as u8; 16],
        }
    }

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (
            Ipv4Addr::from_device(DeviceId(1)),
            Ipv4Addr::from_device(DeviceId(2)),
        )
    }

    #[test]
    fn reliable_fabric_delivers_everything_in_order() {
        let (a, b) = addrs();
        let mut fabric = NetworkFabric::reliable(1);
        for psn in 0..10 {
            fabric.inject(
                a,
                b,
                packet(psn),
                SimInstant::from_nanos(psn as u64 * 10_000),
            );
        }
        let delivered = fabric.deliver_due(SimInstant::from_nanos(1_000_000));
        assert_eq!(delivered.len(), 10);
        let psns: Vec<u32> = delivered.iter().map(|(_, f)| f.packet.header.psn).collect();
        assert_eq!(psns, (0..10).collect::<Vec<_>>());
        assert_eq!(fabric.stats().delivered, 10);
        assert_eq!(fabric.stats().dropped, 0);
    }

    #[test]
    fn delivery_respects_time() {
        let (a, b) = addrs();
        let mut fabric = NetworkFabric::reliable(2);
        fabric.inject(a, b, packet(0), SimInstant::EPOCH);
        assert!(fabric.deliver_due(SimInstant::from_nanos(100)).is_empty());
        assert!(fabric.next_delivery().is_some());
        assert_eq!(fabric.deliver_due(SimInstant::from_nanos(10_000)).len(), 1);
        assert_eq!(fabric.in_flight(), 0);
    }

    #[test]
    fn lossy_link_drops_some_packets() {
        let (a, b) = addrs();
        let mut fabric = NetworkFabric::new(LinkConfig::lossy(0.5), 3);
        for psn in 0..200 {
            fabric.inject(a, b, packet(psn), SimInstant::EPOCH);
        }
        let delivered = fabric.deliver_due(SimInstant::from_nanos(10_000_000)).len();
        assert!(delivered > 50 && delivered < 150, "delivered {delivered}");
        assert!(fabric.stats().dropped > 0);
    }

    #[test]
    fn per_link_configuration_overrides_default() {
        let (a, b) = addrs();
        let mut fabric = NetworkFabric::reliable(4);
        fabric.configure_link(a, b, LinkConfig::lossy(1.0));
        for psn in 0..20 {
            fabric.inject(a, b, packet(psn), SimInstant::EPOCH);
        }
        assert!(fabric
            .deliver_due(SimInstant::from_nanos(10_000_000))
            .is_empty());
        // The reverse direction still uses the reliable default.
        fabric.inject(b, a, packet(0), SimInstant::EPOCH);
        assert_eq!(
            fabric.deliver_due(SimInstant::from_nanos(10_000_000)).len(),
            1
        );
    }

    #[test]
    fn chaotic_link_duplicates_or_reorders() {
        let (a, b) = addrs();
        let mut fabric = NetworkFabric::new(LinkConfig::chaotic(), 5);
        for psn in 0..300 {
            fabric.inject(
                a,
                b,
                packet(psn),
                SimInstant::from_nanos(psn as u64 * 1_000),
            );
        }
        let delivered = fabric.deliver_due(SimInstant::from_nanos(100_000_000));
        let stats = fabric.stats();
        assert!(stats.dropped > 0, "expected drops");
        assert!(stats.duplicated > 0, "expected duplicates");
        // Reordering: delivered PSNs are not sorted.
        let psns: Vec<u32> = delivered.iter().map(|(_, f)| f.packet.header.psn).collect();
        let mut sorted = psns.clone();
        sorted.sort_unstable();
        assert_ne!(psns, sorted, "expected reordering");
    }

    #[test]
    fn tampering_adversary_modifies_packets() {
        let (a, b) = addrs();
        let mut fabric = NetworkFabric::reliable(6);
        fabric.set_adversary(Adversary::TamperPayload { probability: 1.0 });
        fabric.inject(a, b, packet(0), SimInstant::EPOCH);
        let delivered = fabric.deliver_due(SimInstant::from_nanos(1_000_000));
        assert_eq!(delivered.len(), 1);
        assert_ne!(delivered[0].1.packet.payload, packet(0).payload);
        assert_eq!(fabric.stats().tampered, 1);
    }
}
