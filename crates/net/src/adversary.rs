//! Byzantine network adversaries (paper §3.2).
//!
//! The threat model lets an attacker control the network: messages can be
//! dropped, modified, replayed or re-sent stale-but-valid. The attestation
//! kernel's transferable authentication and non-equivocation must detect all
//! of it; these adversaries are used by property and integration tests to
//! demonstrate exactly that.

use tnic_device::roce::packet::RocePacket;
use tnic_sim::rng::DetRng;

/// A network adversary applied to every injected packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Adversary {
    /// No interference.
    Honest,
    /// Flips bytes in the payload with the given probability.
    TamperPayload {
        /// Probability that a given packet is tampered with.
        probability: f64,
    },
    /// Drops every packet matching the probability (network partition /
    /// targeted censorship).
    Drop {
        /// Probability that a given packet is dropped.
        probability: f64,
    },
    /// Replays each packet an extra time with the given probability
    /// (duplication / replay attack).
    Replay {
        /// Probability that a given packet is replayed.
        probability: f64,
    },
    /// Records the first packet seen and keeps re-injecting it instead of
    /// (some) later packets — a stale-message equivocation attempt.
    ReplayStale {
        /// Probability that a later packet is replaced by the recorded one.
        probability: f64,
        /// The recorded packet, if any.
        recorded: Option<Box<RocePacket>>,
    },
}

impl Adversary {
    /// Applies the adversary to a packet, returning the packets that actually
    /// enter the network (empty = dropped, more than one = duplication).
    pub fn apply(&mut self, packet: &RocePacket, rng: &mut DetRng) -> Vec<RocePacket> {
        match self {
            Adversary::Honest => vec![packet.clone()],
            Adversary::TamperPayload { probability } => {
                let mut out = packet.clone();
                if rng.chance(*probability) && !out.payload.is_empty() {
                    let idx = rng.next_below(out.payload.len() as u64) as usize;
                    out.payload[idx] ^= 0xff;
                }
                vec![out]
            }
            Adversary::Drop { probability } => {
                if rng.chance(*probability) {
                    Vec::new()
                } else {
                    vec![packet.clone()]
                }
            }
            Adversary::Replay { probability } => {
                if rng.chance(*probability) {
                    vec![packet.clone(), packet.clone()]
                } else {
                    vec![packet.clone()]
                }
            }
            Adversary::ReplayStale {
                probability,
                recorded,
            } => {
                if recorded.is_none() {
                    *recorded = Some(Box::new(packet.clone()));
                    vec![packet.clone()]
                } else if rng.chance(*probability) {
                    vec![recorded.as_ref().map(|p| (**p).clone()).expect("recorded")]
                } else {
                    vec![packet.clone()]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnic_device::roce::packet::{PacketHeader, RdmaOpcode};
    use tnic_device::types::{DeviceId, Ipv4Addr, MacAddr, QueuePairId};

    fn packet(tag: u8) -> RocePacket {
        RocePacket {
            header: PacketHeader {
                src_mac: MacAddr::from_device(DeviceId(1)),
                dst_mac: MacAddr::from_device(DeviceId(2)),
                src_ip: Ipv4Addr::from_device(DeviceId(1)),
                dst_ip: Ipv4Addr::from_device(DeviceId(2)),
                udp_port: 4791,
                opcode: RdmaOpcode::Write,
                qp: QueuePairId(1),
                psn: u32::from(tag),
                msn: u32::from(tag),
                ack_psn: 0,
            },
            payload: vec![tag; 8],
        }
    }

    #[test]
    fn honest_passes_through() {
        let mut adv = Adversary::Honest;
        let mut rng = DetRng::new(1);
        assert_eq!(adv.apply(&packet(1), &mut rng), vec![packet(1)]);
    }

    #[test]
    fn tamper_changes_payload() {
        let mut adv = Adversary::TamperPayload { probability: 1.0 };
        let mut rng = DetRng::new(2);
        let out = adv.apply(&packet(1), &mut rng);
        assert_eq!(out.len(), 1);
        assert_ne!(out[0].payload, packet(1).payload);
        assert_eq!(out[0].header, packet(1).header);
    }

    #[test]
    fn drop_removes_packets() {
        let mut adv = Adversary::Drop { probability: 1.0 };
        let mut rng = DetRng::new(3);
        assert!(adv.apply(&packet(1), &mut rng).is_empty());
    }

    #[test]
    fn replay_duplicates() {
        let mut adv = Adversary::Replay { probability: 1.0 };
        let mut rng = DetRng::new(4);
        assert_eq!(adv.apply(&packet(1), &mut rng).len(), 2);
    }

    #[test]
    fn stale_replay_substitutes_old_packet() {
        let mut adv = Adversary::ReplayStale {
            probability: 1.0,
            recorded: None,
        };
        let mut rng = DetRng::new(5);
        let first = adv.apply(&packet(1), &mut rng);
        assert_eq!(first[0].payload, packet(1).payload);
        let second = adv.apply(&packet(2), &mut rng);
        assert_eq!(second[0].payload, packet(1).payload, "stale packet replayed");
    }
}
