//! Byzantine network adversaries (paper §3.2).
//!
//! The threat model lets an attacker control the network: messages can be
//! dropped, modified, replayed or re-sent stale-but-valid. The attestation
//! kernel's transferable authentication and non-equivocation must detect all
//! of it; these adversaries are used by property and integration tests to
//! demonstrate exactly that.
//!
//! Two adversary granularities are modelled:
//!
//! * [`Adversary`] — a packet-level attacker applied to individual RoCE
//!   packets on the wire (tampering, dropping, replay).
//! * [`NodeFault`] / [`FaultPlan`] — node-level Byzantine behaviours used by
//!   the accountability (PeerReview) scenarios: a compromised *host* that
//!   equivocates, suppresses audit traffic or rewrites its local log. The
//!   TNIC device itself stays honest (the paper's trust model), which is
//!   precisely why these faults remain detectable.

use std::collections::{BTreeMap, BTreeSet};
use tnic_device::roce::packet::RocePacket;
use tnic_sim::rng::DetRng;

/// A network adversary applied to every injected packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Adversary {
    /// No interference.
    Honest,
    /// Flips bytes in the payload with the given probability.
    TamperPayload {
        /// Probability that a given packet is tampered with.
        probability: f64,
    },
    /// Drops every packet matching the probability (network partition /
    /// targeted censorship).
    Drop {
        /// Probability that a given packet is dropped.
        probability: f64,
    },
    /// Replays each packet an extra time with the given probability
    /// (duplication / replay attack).
    Replay {
        /// Probability that a given packet is replayed.
        probability: f64,
    },
    /// Records the first packet seen and keeps re-injecting it instead of
    /// (some) later packets — a stale-message equivocation attempt.
    ReplayStale {
        /// Probability that a later packet is replaced by the recorded one.
        probability: f64,
        /// The recorded packet, if any.
        recorded: Option<Box<RocePacket>>,
    },
}

impl Adversary {
    /// Applies the adversary to a packet, returning the packets that actually
    /// enter the network (empty = dropped, more than one = duplication).
    pub fn apply(&mut self, packet: &RocePacket, rng: &mut DetRng) -> Vec<RocePacket> {
        match self {
            Adversary::Honest => vec![packet.clone()],
            Adversary::TamperPayload { probability } => {
                let mut out = packet.clone();
                if rng.chance(*probability) && !out.payload.is_empty() {
                    let idx = rng.next_below(out.payload.len() as u64) as usize;
                    out.payload[idx] ^= 0xff;
                }
                vec![out]
            }
            Adversary::Drop { probability } => {
                if rng.chance(*probability) {
                    Vec::new()
                } else {
                    vec![packet.clone()]
                }
            }
            Adversary::Replay { probability } => {
                if rng.chance(*probability) {
                    vec![packet.clone(), packet.clone()]
                } else {
                    vec![packet.clone()]
                }
            }
            Adversary::ReplayStale {
                probability,
                recorded,
            } => {
                if recorded.is_none() {
                    *recorded = Some(Box::new(packet.clone()));
                    vec![packet.clone()]
                } else if rng.chance(*probability) {
                    vec![recorded.as_ref().map(|p| (**p).clone()).expect("recorded")]
                } else {
                    vec![packet.clone()]
                }
            }
        }
    }
}

/// A healing network partition, scheduled in protocol rounds: for rounds in
/// `start_round..heal_round` the nodes in [`PartitionSchedule::group`] cannot
/// exchange messages with the nodes outside it (both directions); traffic
/// *within* either side is unaffected. Once the window passes, the partition
/// has healed and every link works again — the accountability protocol must
/// tolerate the outage with delayed verdicts, never false exposure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSchedule {
    /// The minority (or any) side of the cut, by raw node id.
    pub group: BTreeSet<u32>,
    /// First round (inclusive) during which the cut is open.
    pub start_round: u64,
    /// First round (exclusive end) at which the cut has healed.
    pub heal_round: u64,
}

impl PartitionSchedule {
    /// A partition separating `group` from everyone else during rounds
    /// `start_round..heal_round`.
    #[must_use]
    pub fn new(group: impl IntoIterator<Item = u32>, start_round: u64, heal_round: u64) -> Self {
        PartitionSchedule {
            group: group.into_iter().collect(),
            start_round,
            heal_round,
        }
    }

    /// Whether the cut is open during `round`.
    #[must_use]
    pub fn active(&self, round: u64) -> bool {
        round >= self.start_round && round < self.heal_round
    }

    /// Whether the cut severs the link `a ↔ b` during `round`: exactly one
    /// endpoint sits inside the partitioned group.
    #[must_use]
    pub fn cuts(&self, round: u64, a: u32, b: u32) -> bool {
        self.active(round) && (self.group.contains(&a) != self.group.contains(&b))
    }

    /// Length of the outage in rounds.
    #[must_use]
    pub fn outage_rounds(&self) -> u64 {
        self.heal_round.saturating_sub(self.start_round)
    }
}

/// A node-level Byzantine behaviour injected into accountability scenarios.
///
/// These model a compromised host *behind* an honest TNIC: the device still
/// attests faithfully (keys and counters are hardware-protected), but the
/// software above it may fork its view, go silent, or rewrite its local
/// state. Each variant corresponds to a misbehaviour class the PeerReview
/// audit protocol must classify.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeFault {
    /// The node follows the protocol.
    Correct,
    /// The node forks its tamper-evident log and commits to different log
    /// heads towards different witnesses (classic equivocation).
    Equivocate,
    /// The node suppresses its audit traffic: challenges go unanswered with
    /// the given probability (1.0 = fully silent).
    SuppressAudits {
        /// Probability that a given challenge is ignored.
        probability: f64,
    },
    /// The node truncates the tail of its log before answering an audit,
    /// dropping the most recent `drop_tail` entries it already committed to.
    TruncateLog {
        /// Number of committed tail entries removed before responding.
        drop_tail: u64,
    },
    /// The node rewrites the content of an already-committed log entry (and
    /// re-chains the hashes so the forgery is locally self-consistent).
    TamperLogEntry {
        /// Sequence number of the rewritten entry.
        seq: u64,
    },
    /// **Byzantine witness**: the node performs its audit duties but never
    /// cosigns checkpoint proposals, trying to starve its auditees' garbage
    /// collection. A quorum of the remaining witnesses still certifies the
    /// checkpoint (pruning is delayed, never blocked), and epoch rotation
    /// eventually moves the withholder out of the set.
    WithholdCosignatures,
    /// **Byzantine witness**: the node returns *forged* cosignatures — its
    /// (honest) device seals a different state digest than proposed, and
    /// the host claims the cosignature covers the real checkpoint. The
    /// proposer's content/seal checks reject it; accuracy is unaffected
    /// because a TNIC cannot be made to lie about what it sealed.
    ForgeCosignatures,
    /// **Byzantine audit witness**: the node fabricates evidence against a
    /// correct auditee — it pairs a genuine commitment with a forged
    /// counterpart (sealed by its *own* honest device, since the auditee's
    /// TNIC refuses to lie) and broadcasts the pair as equivocation proof.
    /// Evidence is verified before adoption: the forged seal fails the
    /// device/session binding, so the accusation is rejected and turned
    /// against the accuser instead.
    ForgeEvidence,
    /// **Byzantine audit witness**: the node marks its auditees suspected
    /// without ever issuing (let alone failing) a challenge. The lie is
    /// inherently local — a suspicion carries no evidence and convinces no
    /// correct third party — so every correct witness's verdict is
    /// unaffected and the auditee can never be exposed by it.
    FalseSuspicion,
    /// **Byzantine audit witness**: the node performs its own audits but
    /// never forwards commitments to fellow witnesses — neither dedicated
    /// `Gossip` messages nor piggyback relays. Fellow witnesses fall back
    /// on the auditee's rotating direct announcements (commitments are
    /// cumulative), so propagation is delayed, never prevented.
    WithholdGossip,
    /// **Byzantine audit witness**: the node refuses to *relay* piggybacked
    /// commitments (it silently drops gossip rides instead of queueing
    /// them) while still behaving correctly in dedicated mode. The
    /// piggyback-mode completeness cost is detection latency, bounded by
    /// the announcement rotation.
    RefuseRelay,
    /// **Byzantine audit witness**: the node skips its audit duties
    /// entirely — no challenges, no verdict updates. Its auditees are still
    /// audited (and any fault exposed) by the remaining correct witnesses.
    SilentWitness,
}

impl NodeFault {
    /// Whether the behaviour deviates from the protocol.
    #[must_use]
    pub fn is_byzantine(self) -> bool {
        self != NodeFault::Correct
    }

    /// Short label used in scenario tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NodeFault::Correct => "correct",
            NodeFault::Equivocate => "equivocate",
            NodeFault::SuppressAudits { .. } => "suppress-audits",
            NodeFault::TruncateLog { .. } => "truncate-log",
            NodeFault::TamperLogEntry { .. } => "tamper-entry",
            NodeFault::WithholdCosignatures => "withhold-cosign",
            NodeFault::ForgeCosignatures => "forge-cosign",
            NodeFault::ForgeEvidence => "forge-evidence",
            NodeFault::FalseSuspicion => "false-suspicion",
            NodeFault::WithholdGossip => "withhold-gossip",
            NodeFault::RefuseRelay => "refuse-relay",
            NodeFault::SilentWitness => "silent-witness",
        }
    }

    /// Whether the behaviour is a *witness-side* audit fault: the node
    /// deviates in its role as a witness (lying about, withholding or
    /// skipping audit work) while still behaving correctly as an auditee.
    /// Such a node is never provably faulty to *its own* witnesses — except
    /// a [`NodeFault::ForgeEvidence`] accuser, whose unverifiable accusation
    /// is itself the evidence against it.
    #[must_use]
    pub fn is_witness_fault(self) -> bool {
        matches!(
            self,
            NodeFault::ForgeEvidence
                | NodeFault::FalseSuspicion
                | NodeFault::WithholdGossip
                | NodeFault::RefuseRelay
                | NodeFault::SilentWitness
                | NodeFault::WithholdCosignatures
                | NodeFault::ForgeCosignatures
        )
    }
}

/// Assignment of [`NodeFault`]s to nodes (by raw node id), the scenario input
/// of the accountability fault-injection harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: BTreeMap<u32, NodeFault>,
}

impl FaultPlan {
    /// A plan in which every node is correct.
    #[must_use]
    pub fn all_correct() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single faulty node.
    #[must_use]
    pub fn single(node: u32, fault: NodeFault) -> Self {
        let mut plan = FaultPlan::default();
        plan.set(node, fault);
        plan
    }

    /// Assigns `fault` to `node` (replacing any previous assignment).
    pub fn set(&mut self, node: u32, fault: NodeFault) {
        if fault == NodeFault::Correct {
            self.faults.remove(&node);
        } else {
            self.faults.insert(node, fault);
        }
    }

    /// The fault assigned to `node` ([`NodeFault::Correct`] by default).
    #[must_use]
    pub fn fault_of(&self, node: u32) -> NodeFault {
        self.faults
            .get(&node)
            .copied()
            .unwrap_or(NodeFault::Correct)
    }

    /// Ids of all Byzantine nodes, in ascending order.
    #[must_use]
    pub fn byzantine_nodes(&self) -> Vec<u32> {
        self.faults.keys().copied().collect()
    }

    /// Whether the plan contains no Byzantine node.
    #[must_use]
    pub fn is_all_correct(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnic_device::roce::packet::{PacketHeader, RdmaOpcode};
    use tnic_device::types::{DeviceId, Ipv4Addr, MacAddr, QueuePairId};

    fn packet(tag: u8) -> RocePacket {
        RocePacket {
            header: PacketHeader {
                src_mac: MacAddr::from_device(DeviceId(1)),
                dst_mac: MacAddr::from_device(DeviceId(2)),
                src_ip: Ipv4Addr::from_device(DeviceId(1)),
                dst_ip: Ipv4Addr::from_device(DeviceId(2)),
                udp_port: 4791,
                opcode: RdmaOpcode::Write,
                qp: QueuePairId(1),
                psn: u32::from(tag),
                msn: u32::from(tag),
                ack_psn: 0,
            },
            payload: vec![tag; 8],
        }
    }

    #[test]
    fn honest_passes_through() {
        let mut adv = Adversary::Honest;
        let mut rng = DetRng::new(1);
        assert_eq!(adv.apply(&packet(1), &mut rng), vec![packet(1)]);
    }

    #[test]
    fn tamper_changes_payload() {
        let mut adv = Adversary::TamperPayload { probability: 1.0 };
        let mut rng = DetRng::new(2);
        let out = adv.apply(&packet(1), &mut rng);
        assert_eq!(out.len(), 1);
        assert_ne!(out[0].payload, packet(1).payload);
        assert_eq!(out[0].header, packet(1).header);
    }

    #[test]
    fn drop_removes_packets() {
        let mut adv = Adversary::Drop { probability: 1.0 };
        let mut rng = DetRng::new(3);
        assert!(adv.apply(&packet(1), &mut rng).is_empty());
    }

    #[test]
    fn replay_duplicates() {
        let mut adv = Adversary::Replay { probability: 1.0 };
        let mut rng = DetRng::new(4);
        assert_eq!(adv.apply(&packet(1), &mut rng).len(), 2);
    }

    #[test]
    fn fault_plan_defaults_to_correct() {
        let plan = FaultPlan::all_correct();
        assert!(plan.is_all_correct());
        assert_eq!(plan.fault_of(3), NodeFault::Correct);
        assert!(!plan.fault_of(3).is_byzantine());
    }

    #[test]
    fn fault_plan_tracks_byzantine_nodes() {
        let mut plan = FaultPlan::single(2, NodeFault::Equivocate);
        plan.set(5, NodeFault::TruncateLog { drop_tail: 3 });
        assert_eq!(plan.byzantine_nodes(), vec![2, 5]);
        assert!(plan.fault_of(2).is_byzantine());
        assert_eq!(plan.fault_of(2).label(), "equivocate");
        // Re-assigning Correct clears the entry.
        plan.set(2, NodeFault::Correct);
        assert_eq!(plan.byzantine_nodes(), vec![5]);
    }

    #[test]
    fn witness_faults_are_byzantine_and_classified() {
        for fault in [
            NodeFault::ForgeEvidence,
            NodeFault::FalseSuspicion,
            NodeFault::WithholdGossip,
            NodeFault::RefuseRelay,
            NodeFault::SilentWitness,
        ] {
            assert!(fault.is_byzantine());
            assert!(fault.is_witness_fault());
            assert!(!fault.label().is_empty());
        }
        assert!(!NodeFault::Equivocate.is_witness_fault());
        assert!(!NodeFault::Correct.is_witness_fault());
        assert!(NodeFault::WithholdCosignatures.is_witness_fault());
        assert_eq!(NodeFault::ForgeEvidence.label(), "forge-evidence");
    }

    #[test]
    fn partition_schedule_cuts_only_across_the_group_during_the_window() {
        let schedule = PartitionSchedule::new([0, 1], 2, 4);
        assert_eq!(schedule.outage_rounds(), 2);
        // Before the window and after healing: nothing is cut.
        for round in [0, 1, 4, 5] {
            assert!(!schedule.cuts(round, 0, 2), "round {round}");
        }
        // During the window only cross-group links are severed.
        for round in [2, 3] {
            assert!(schedule.cuts(round, 0, 2));
            assert!(schedule.cuts(round, 3, 1), "direction-agnostic");
            assert!(!schedule.cuts(round, 0, 1), "intra-group survives");
            assert!(!schedule.cuts(round, 2, 3), "other side survives");
        }
    }

    #[test]
    fn stale_replay_substitutes_old_packet() {
        let mut adv = Adversary::ReplayStale {
            probability: 1.0,
            recorded: None,
        };
        let mut rng = DetRng::new(5);
        let first = adv.apply(&packet(1), &mut rng);
        assert_eq!(first[0].payload, packet(1).payload);
        let second = adv.apply(&packet(2), &mut rng);
        assert_eq!(
            second[0].payload,
            packet(1).payload,
            "stale packet replayed"
        );
    }
}
