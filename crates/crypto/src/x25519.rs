//! X25519 Diffie–Hellman key agreement (RFC 7748).
//!
//! Used during TNIC remote attestation (paper §4.3 steps 6.1–6.3) to establish
//! the mutually authenticated channel between the IP vendor and the device
//! controller over which secrets and the bitstream are delivered.

use crate::field25519::FieldElement;

/// Length of scalars and u-coordinates in bytes.
pub const KEY_LEN: usize = 32;

/// The base point u = 9.
pub const BASEPOINT: [u8; KEY_LEN] = {
    let mut b = [0u8; KEY_LEN];
    b[0] = 9;
    b
};

/// Clamps a 32-byte secret into an X25519 scalar as specified by RFC 7748.
#[must_use]
pub fn clamp_scalar(mut scalar: [u8; KEY_LEN]) -> [u8; KEY_LEN] {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
    scalar
}

/// Performs the X25519 function: scalar multiplication on the Montgomery
/// curve, returning the resulting u-coordinate.
#[must_use]
pub fn x25519(scalar: &[u8; KEY_LEN], u_coordinate: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    let k = clamp_scalar(*scalar);
    let x1 = FieldElement::from_bytes(u_coordinate);

    let mut x2 = FieldElement::ONE;
    let mut z2 = FieldElement::ZERO;
    let mut x3 = x1;
    let mut z3 = FieldElement::ONE;
    let mut swap = false;

    let a24 = FieldElement::from_u64(121_665);

    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1 == 1;
        let do_swap = swap ^ k_t;
        if do_swap {
            std::mem::swap(&mut x2, &mut x3);
            std::mem::swap(&mut z2, &mut z3);
        }
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&a24.mul(&e)));
    }
    if swap {
        std::mem::swap(&mut x2, &mut x3);
        std::mem::swap(&mut z2, &mut z3);
    }
    x2.mul(&z2.invert()).to_bytes()
}

/// Computes the public key for a secret scalar (scalar · basepoint).
#[must_use]
pub fn public_key(secret: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    x25519(secret, &BASEPOINT)
}

/// Computes the shared secret between a local secret and a remote public key.
#[must_use]
pub fn shared_secret(secret: &[u8; KEY_LEN], peer_public: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    x25519(secret, peer_public)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap();
        }
        out
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector2() {
        let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    // RFC 7748 §6.1 Diffie-Hellman test vector.
    #[test]
    fn rfc7748_diffie_hellman() {
        let alice_priv =
            unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_priv = unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pub = public_key(&alice_priv);
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            hex(&alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(&bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let s1 = shared_secret(&alice_priv, &bob_pub);
        let s2 = shared_secret(&bob_priv, &alice_pub);
        assert_eq!(s1, s2);
        assert_eq!(
            hex(&s1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn iterated_ladder_one_step() {
        // RFC 7748 §5.2: after 1 iteration of k = u = 0900..00 the result is
        // 422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079.
        let k = BASEPOINT;
        let u = BASEPOINT;
        assert_eq!(
            hex(&x25519(&k, &u)),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    #[test]
    fn clamping_sets_expected_bits() {
        let clamped = clamp_scalar([0xffu8; 32]);
        assert_eq!(clamped[0] & 7, 0);
        assert_eq!(clamped[31] & 0x80, 0);
        assert_eq!(clamped[31] & 0x40, 0x40);
    }

    #[test]
    fn shared_secrets_agree_for_arbitrary_keys() {
        for seed in 0u8..5 {
            let a = [seed; 32];
            let b = [seed.wrapping_add(100); 32];
            let s1 = shared_secret(&a, &public_key(&b));
            let s2 = shared_secret(&b, &public_key(&a));
            assert_eq!(s1, s2, "seed {seed}");
        }
    }
}
