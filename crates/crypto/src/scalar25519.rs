//! Arithmetic modulo the Ed25519 group order
//! ℓ = 2²⁵² + 27742317777372353535851937790883648493.

/// The group order ℓ as little-endian limbs.
pub const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
];

/// A scalar modulo ℓ, always stored fully reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Scalar(pub(crate) [u64; 4]);

impl Scalar {
    /// The scalar 0.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    /// The scalar 1.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Reduces 32 little-endian bytes modulo ℓ.
    #[must_use]
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Scalar {
        Scalar::reduce_be_bytes(&reversed(bytes))
    }

    /// Reduces 64 little-endian bytes (e.g. a SHA-512 output) modulo ℓ.
    #[must_use]
    pub fn from_bytes_mod_order_wide(bytes: &[u8; 64]) -> Scalar {
        Scalar::reduce_be_bytes(&reversed(bytes))
    }

    /// Returns `Some(scalar)` if the 32 little-endian bytes already encode a
    /// canonical scalar (`< ℓ`), `None` otherwise. Used when validating the
    /// `S` component of a signature.
    #[must_use]
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            limbs[i] = u64::from_le_bytes(chunk);
        }
        let candidate = Scalar(limbs);
        if candidate.is_canonical() {
            Some(candidate)
        } else {
            None
        }
    }

    fn is_canonical(&self) -> bool {
        // self < L ?
        for i in (0..4).rev() {
            if self.0[i] < L[i] {
                return true;
            }
            if self.0[i] > L[i] {
                return false;
            }
        }
        false
    }

    /// Horner-style reduction of an arbitrary-length big-endian byte string.
    fn reduce_be_bytes(bytes: &[u8]) -> Scalar {
        let mut acc = Scalar::ZERO;
        for &byte in bytes {
            // acc = acc * 256 + byte (mod L)
            for _ in 0..8 {
                acc = acc.double_mod();
            }
            acc = acc.add(&Scalar::small(u64::from(byte)));
        }
        acc
    }

    fn small(v: u64) -> Scalar {
        // v < 256 << L, already canonical.
        Scalar([v, 0, 0, 0])
    }

    fn double_mod(&self) -> Scalar {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (o, limb) in out.iter_mut().zip(&self.0) {
            *o = (limb << 1) | carry;
            carry = limb >> 63;
        }
        debug_assert_eq!(carry, 0, "canonical scalars are < 2^253");
        Scalar(out).conditional_sub_l()
    }

    fn conditional_sub_l(self) -> Scalar {
        let (reduced, borrow) = self.sub_raw(&Scalar(L));
        if borrow == 0 {
            reduced
        } else {
            self
        }
    }

    fn sub_raw(&self, other: &Scalar) -> (Scalar, u64) {
        let mut out = [0u64; 4];
        let mut borrow: u64 = 0;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&other.0)) {
            let (d1, b1) = a.overflowing_sub(*b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *o = d2;
            borrow = u64::from(b1) | u64::from(b2);
        }
        (Scalar(out), borrow)
    }

    /// Addition modulo ℓ.
    #[must_use]
    pub fn add(&self, other: &Scalar) -> Scalar {
        let mut out = [0u64; 4];
        let mut carry: u128 = 0;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&other.0)) {
            let v = (*a as u128) + (*b as u128) + carry;
            *o = v as u64;
            carry = v >> 64;
        }
        debug_assert_eq!(carry, 0, "sum of two canonical scalars fits in 256 bits");
        Scalar(out).conditional_sub_l()
    }

    /// Subtraction modulo ℓ.
    #[must_use]
    pub fn sub(&self, other: &Scalar) -> Scalar {
        let (diff, borrow) = self.sub_raw(other);
        if borrow == 0 {
            return diff;
        }
        // Add ℓ back.
        let mut out = [0u64; 4];
        let mut carry: u128 = 0;
        for i in 0..4 {
            let v = (diff.0[i] as u128) + (L[i] as u128) + carry;
            out[i] = v as u64;
            carry = v >> 64;
        }
        Scalar(out)
    }

    /// Multiplication modulo ℓ.
    #[must_use]
    pub fn mul(&self, other: &Scalar) -> Scalar {
        let mut t = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let v = (t[i + j] as u128) + (self.0[i] as u128) * (other.0[j] as u128) + carry;
                t[i + j] = v as u64;
                carry = v >> 64;
            }
            t[i + 4] = carry as u64;
        }
        // Serialise the 512-bit product big-endian and reduce.
        let mut be = [0u8; 64];
        for i in 0..8 {
            be[(7 - i) * 8..(7 - i) * 8 + 8].copy_from_slice(&t[i].to_be_bytes());
        }
        Scalar::reduce_be_bytes(&be)
    }

    /// Computes `self * b + c` modulo ℓ (the core of Ed25519 signing).
    #[must_use]
    pub fn mul_add(&self, b: &Scalar, c: &Scalar) -> Scalar {
        self.mul(b).add(c)
    }

    /// Encodes the canonical scalar as 32 little-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// Returns `true` if the scalar is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }
}

fn reversed(bytes: &[u8]) -> Vec<u8> {
    let mut v = bytes.to_vec();
    v.reverse();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Scalar::ZERO.is_zero());
        assert_eq!(Scalar::ONE.add(&Scalar::ZERO), Scalar::ONE);
        assert_eq!(Scalar::ONE.mul(&Scalar::ONE), Scalar::ONE);
    }

    #[test]
    fn l_reduces_to_zero() {
        let mut bytes = [0u8; 32];
        for i in 0..4 {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&L[i].to_le_bytes());
        }
        assert!(Scalar::from_bytes_mod_order(&bytes).is_zero());
        assert!(Scalar::from_canonical_bytes(&bytes).is_none());
    }

    #[test]
    fn l_minus_one_is_canonical_and_adds_to_zero() {
        let l_minus_1 = Scalar(L).sub(&Scalar::ONE);
        assert!(l_minus_1.is_canonical());
        assert!(l_minus_1.add(&Scalar::ONE).is_zero());
        let bytes = l_minus_1.to_bytes();
        assert_eq!(Scalar::from_canonical_bytes(&bytes), Some(l_minus_1));
    }

    #[test]
    fn small_arithmetic() {
        let a = Scalar([7, 0, 0, 0]);
        let b = Scalar([6, 0, 0, 0]);
        assert_eq!(a.mul(&b), Scalar([42, 0, 0, 0]));
        assert_eq!(a.sub(&b), Scalar::ONE);
        assert_eq!(b.sub(&a), Scalar(L).sub(&Scalar::ONE));
        assert_eq!(a.mul_add(&b, &Scalar::ONE), Scalar([43, 0, 0, 0]));
    }

    #[test]
    fn wide_reduction_matches_narrow_for_small_values() {
        let mut wide = [0u8; 64];
        wide[0] = 0xab;
        wide[1] = 0x01;
        let mut narrow = [0u8; 32];
        narrow[0] = 0xab;
        narrow[1] = 0x01;
        assert_eq!(
            Scalar::from_bytes_mod_order_wide(&wide),
            Scalar::from_bytes_mod_order(&narrow)
        );
    }

    #[test]
    fn round_trip_bytes() {
        let s = Scalar::from_bytes_mod_order(&[0x42u8; 32]);
        assert_eq!(Scalar::from_bytes_mod_order(&s.to_bytes()), s);
    }

    #[test]
    fn mul_is_commutative_and_distributive() {
        let a = Scalar::from_bytes_mod_order(&[17u8; 32]);
        let b = Scalar::from_bytes_mod_order(&[99u8; 32]);
        let c = Scalar::from_bytes_mod_order(&[3u8; 32]);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }
}
