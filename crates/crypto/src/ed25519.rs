//! Ed25519 signatures (RFC 8032).
//!
//! TNIC uses signatures in two places (paper §4.3 and Appendix C.1): the
//! controller key pair `Ctrl_pub/priv` that signs attestation certificates
//! during bootstrapping, and the per-device client key pair `C_pub/priv` used
//! to sign replies to (Byzantine) clients that cannot hold the symmetric
//! session keys.

use crate::edwards::EdwardsPoint;
use crate::error::CryptoError;
use crate::scalar25519::Scalar;
use crate::sha512::Sha512;

/// Length of an Ed25519 signature in bytes.
pub const SIGNATURE_LEN: usize = 64;
/// Length of a public key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;
/// Length of a secret seed in bytes.
pub const SEED_LEN: usize = 32;

/// A detached Ed25519 signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub [u8; SIGNATURE_LEN]);

impl Signature {
    /// Returns the raw 64-byte encoding.
    #[must_use]
    pub fn to_bytes(self) -> [u8; SIGNATURE_LEN] {
        self.0
    }

    /// Parses a signature from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `bytes` is not 64 bytes long.
    pub fn from_slice(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != SIGNATURE_LEN {
            return Err(CryptoError::InvalidLength);
        }
        let mut sig = [0u8; SIGNATURE_LEN];
        sig.copy_from_slice(bytes);
        Ok(Signature(sig))
    }
}

/// An Ed25519 verifying (public) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey(pub [u8; PUBLIC_KEY_LEN]);

impl VerifyingKey {
    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidSignature`] if the signature does not
    /// verify, or [`CryptoError::InvalidPoint`] / [`CryptoError::InvalidScalar`]
    /// if the key or signature encoding is malformed.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let sig = &signature.0;
        let mut r_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&sig[..32]);
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&sig[32..]);

        let s = Scalar::from_canonical_bytes(&s_bytes).ok_or(CryptoError::InvalidScalar)?;
        let r_point = EdwardsPoint::decompress(&r_bytes)?;
        let a_point = EdwardsPoint::decompress(&self.0)?;

        let mut hasher = Sha512::new();
        hasher.update(&r_bytes);
        hasher.update(&self.0);
        hasher.update(message);
        let k = Scalar::from_bytes_mod_order_wide(&hasher.finalize());

        // Check [S]B == R + [k]A.
        let lhs = EdwardsPoint::basepoint_mul(&s.to_bytes());
        let rhs = r_point.add(&a_point.scalar_mul(&k.to_bytes()));
        if lhs == rhs {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }

    /// Returns the raw 32-byte encoding.
    #[must_use]
    pub fn to_bytes(self) -> [u8; PUBLIC_KEY_LEN] {
        self.0
    }
}

/// An Ed25519 signing (secret) key, derived from a 32-byte seed.
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; SEED_LEN],
    clamped: [u8; 32],
    prefix: [u8; 32],
    public: VerifyingKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigningKey")
            .field("public", &self.public)
            .field("seed", &"<redacted>")
            .finish()
    }
}

impl SigningKey {
    /// Derives a signing key from a 32-byte seed, per RFC 8032 §5.1.5.
    #[must_use]
    pub fn from_seed(seed: &[u8; SEED_LEN]) -> Self {
        let mut h = Sha512::new();
        h.update(seed);
        let digest = h.finalize();
        let mut clamped = [0u8; 32];
        clamped.copy_from_slice(&digest[..32]);
        clamped[0] &= 248;
        clamped[31] &= 127;
        clamped[31] |= 64;
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&digest[32..]);
        let public_point = EdwardsPoint::basepoint_mul(&clamped);
        SigningKey {
            seed: *seed,
            clamped,
            prefix,
            public: VerifyingKey(public_point.compress()),
        }
    }

    /// Returns the corresponding public key.
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Returns the seed this key was derived from.
    #[must_use]
    pub fn seed(&self) -> [u8; SEED_LEN] {
        self.seed
    }

    /// Signs `message`, returning a detached signature.
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Signature {
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(message);
        let r = Scalar::from_bytes_mod_order_wide(&h.finalize());
        let r_point = EdwardsPoint::basepoint_mul(&r.to_bytes());
        let r_bytes = r_point.compress();

        let mut h2 = Sha512::new();
        h2.update(&r_bytes);
        h2.update(&self.public.0);
        h2.update(message);
        let k = Scalar::from_bytes_mod_order_wide(&h2.finalize());

        let s_scalar = Scalar::from_bytes_mod_order(&self.clamped);
        let s = k.mul_add(&s_scalar, &r);

        let mut sig = [0u8; SIGNATURE_LEN];
        sig[..32].copy_from_slice(&r_bytes);
        sig[32..].copy_from_slice(&s.to_bytes());
        Signature(sig)
    }
}

/// A convenience pairing of a signing key and its public key.
#[derive(Debug, Clone)]
pub struct Keypair {
    /// The secret half.
    pub signing: SigningKey,
    /// The public half.
    pub verifying: VerifyingKey,
}

impl Keypair {
    /// Derives a key pair deterministically from a seed.
    #[must_use]
    pub fn from_seed(seed: &[u8; SEED_LEN]) -> Self {
        let signing = SigningKey::from_seed(seed);
        let verifying = signing.verifying_key();
        Keypair { signing, verifying }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn unhex32(s: &str) -> [u8; 32] {
        let v = unhex(s);
        let mut out = [0u8; 32];
        out.copy_from_slice(&v);
        out
    }

    struct Vector {
        seed: &'static str,
        public: &'static str,
        message: &'static str,
        signature: &'static str,
    }

    const RFC8032_VECTORS: &[Vector] = &[
        Vector {
            seed: "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
            public: "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
            message: "",
            signature: "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
                        5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
        },
        Vector {
            seed: "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
            public: "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
            message: "72",
            signature: "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
                        085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
        },
        Vector {
            seed: "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
            public: "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
            message: "af82",
            signature: "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
                        18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
        },
    ];

    #[test]
    fn rfc8032_public_keys() {
        for v in RFC8032_VECTORS {
            let key = SigningKey::from_seed(&unhex32(v.seed));
            assert_eq!(key.verifying_key().to_bytes(), unhex32(v.public));
        }
    }

    #[test]
    fn rfc8032_signatures() {
        for v in RFC8032_VECTORS {
            let key = SigningKey::from_seed(&unhex32(v.seed));
            let msg = unhex(v.message);
            let sig = key.sign(&msg);
            assert_eq!(sig.to_bytes().to_vec(), unhex(v.signature));
            key.verifying_key().verify(&msg, &sig).expect("verifies");
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let key = SigningKey::from_seed(&[7u8; 32]);
        let sig = key.sign(b"proof of execution #42");
        assert!(key
            .verifying_key()
            .verify(b"proof of execution #43", &sig)
            .is_err());
    }

    #[test]
    fn tampered_signature_rejected() {
        let key = SigningKey::from_seed(&[8u8; 32]);
        let mut sig = key.sign(b"msg").to_bytes();
        sig[5] ^= 1;
        assert!(key.verifying_key().verify(b"msg", &Signature(sig)).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let key1 = SigningKey::from_seed(&[1u8; 32]);
        let key2 = SigningKey::from_seed(&[2u8; 32]);
        let sig = key1.sign(b"msg");
        assert!(key2.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn non_canonical_s_rejected() {
        let key = SigningKey::from_seed(&[3u8; 32]);
        let mut sig = key.sign(b"msg").to_bytes();
        // Force S >= L by setting its top bits.
        sig[63] |= 0xf0;
        assert_eq!(
            key.verifying_key().verify(b"msg", &Signature(sig)),
            Err(CryptoError::InvalidScalar)
        );
    }

    #[test]
    fn signature_from_slice_length_check() {
        assert!(Signature::from_slice(&[0u8; 63]).is_err());
        assert!(Signature::from_slice(&[0u8; 64]).is_ok());
    }

    #[test]
    fn debug_does_not_leak_seed() {
        let key = SigningKey::from_seed(&[0xAAu8; 32]);
        let s = format!("{key:?}");
        assert!(s.contains("redacted"));
    }

    #[test]
    fn keypair_is_deterministic() {
        let a = Keypair::from_seed(&[5u8; 32]);
        let b = Keypair::from_seed(&[5u8; 32]);
        assert_eq!(a.verifying, b.verifying);
    }
}
