//! Error type shared by the fallible operations in this crate.

use std::error::Error;
use std::fmt;

/// Errors returned by cryptographic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CryptoError {
    /// A signature failed to verify against the given public key and message.
    InvalidSignature,
    /// An encoded point was not a valid curve point.
    InvalidPoint,
    /// An encoded scalar was out of range or malformed.
    InvalidScalar,
    /// A key had the wrong length.
    InvalidKeyLength,
    /// An authenticated ciphertext failed its integrity check.
    InvalidCiphertext,
    /// A buffer had an unexpected length.
    InvalidLength,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            CryptoError::InvalidSignature => "signature verification failed",
            CryptoError::InvalidPoint => "invalid curve point encoding",
            CryptoError::InvalidScalar => "invalid scalar encoding",
            CryptoError::InvalidKeyLength => "invalid key length",
            CryptoError::InvalidCiphertext => "ciphertext failed authentication",
            CryptoError::InvalidLength => "invalid buffer length",
        };
        f.write_str(msg)
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            CryptoError::InvalidSignature,
            CryptoError::InvalidPoint,
            CryptoError::InvalidScalar,
            CryptoError::InvalidKeyLength,
            CryptoError::InvalidCiphertext,
            CryptoError::InvalidLength,
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
