//! Arithmetic in the prime field GF(2²⁵⁵ − 19) used by Curve25519.
//!
//! Field elements are kept in canonical (fully reduced) form after every
//! operation; the representation is four little-endian 64-bit limbs. The
//! implementation favours simplicity and auditability over speed — this is a
//! simulation substrate, not a production curve library.

/// The field prime p = 2²⁵⁵ − 19 as little-endian limbs.
pub const P: [u64; 4] = [
    0xffff_ffff_ffff_ffed,
    0xffff_ffff_ffff_ffff,
    0xffff_ffff_ffff_ffff,
    0x7fff_ffff_ffff_ffff,
];

/// An element of GF(2²⁵⁵ − 19), always stored fully reduced (`< p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldElement(pub(crate) [u64; 4]);

impl Default for FieldElement {
    fn default() -> Self {
        FieldElement::ZERO
    }
}

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0]);

    /// The Edwards curve constant d = −121665/121666.
    pub const D: FieldElement = FieldElement([
        0x75eb_4dca_1359_78a3,
        0x0070_0a4d_4141_d8ab,
        0x8cc7_4079_7779_e898,
        0x5203_6cee_2b6f_fe73,
    ]);
    /// 2·d.
    pub const D2: FieldElement = FieldElement([
        0xebd6_9b94_26b2_f159,
        0x00e0_149a_8283_b156,
        0x198e_80f2_eef3_d130,
        0x2406_d9dc_56df_fce7,
    ]);
    /// A square root of −1 (used during point decompression).
    pub const SQRT_M1: FieldElement = FieldElement([
        0xc4ee_1b27_4a0e_a0b0,
        0x2f43_1806_ad2f_e478,
        0x2b4d_0099_3dfb_d7a7,
        0x2b83_2480_4fc1_df0b,
    ]);

    /// Constructs a field element from little-endian limbs, reducing mod p.
    #[must_use]
    pub fn from_limbs(limbs: [u64; 4]) -> Self {
        FieldElement(limbs).canonicalize()
    }

    /// Constructs a small field element from a `u64`.
    #[must_use]
    pub fn from_u64(value: u64) -> Self {
        FieldElement([value, 0, 0, 0])
    }

    /// Decodes 32 little-endian bytes, ignoring the top bit (bit 255), and
    /// reduces the result mod p.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = u64::from_le_bytes([
                bytes[i * 8],
                bytes[i * 8 + 1],
                bytes[i * 8 + 2],
                bytes[i * 8 + 3],
                bytes[i * 8 + 4],
                bytes[i * 8 + 5],
                bytes[i * 8 + 6],
                bytes[i * 8 + 7],
            ]);
        }
        limbs[3] &= 0x7fff_ffff_ffff_ffff;
        FieldElement(limbs).canonicalize()
    }

    /// Encodes the canonical value as 32 little-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// Returns `true` if this element is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Returns `true` if the canonical encoding has its least-significant bit
    /// set (the "negative" convention used by Ed25519 point compression).
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.0[0] & 1 == 1
    }

    fn canonicalize(self) -> Self {
        let mut v = self;
        // The value is always < 2^256 < 3p, so at most two subtractions.
        for _ in 0..2 {
            let (reduced, borrow) = v.sub_p();
            if borrow == 0 {
                v = reduced;
            }
        }
        v
    }

    fn sub_p(&self) -> (FieldElement, u64) {
        let mut out = [0u64; 4];
        let mut borrow: u64 = 0;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(P[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = u64::from(b1) | u64::from(b2);
        }
        (FieldElement(out), borrow)
    }

    /// Field addition.
    #[must_use]
    pub fn add(&self, other: &FieldElement) -> FieldElement {
        let mut out = [0u64; 4];
        let mut carry: u64 = 0;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&other.0)) {
            let v = (*a as u128) + (*b as u128) + (carry as u128);
            *o = v as u64;
            carry = (v >> 64) as u64;
        }
        debug_assert_eq!(carry, 0, "sum of two reduced elements fits in 256 bits");
        FieldElement(out).canonicalize()
    }

    /// Field subtraction.
    #[must_use]
    pub fn sub(&self, other: &FieldElement) -> FieldElement {
        let mut out = [0u64; 4];
        let mut borrow: u64 = 0;
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&other.0)) {
            let (d1, b1) = a.overflowing_sub(*b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *o = d2;
            borrow = u64::from(b1) | u64::from(b2);
        }
        if borrow != 0 {
            // Add p back.
            let mut carry: u64 = 0;
            for i in 0..4 {
                let v = (out[i] as u128) + (P[i] as u128) + (carry as u128);
                out[i] = v as u64;
                carry = (v >> 64) as u64;
            }
        }
        FieldElement(out)
    }

    /// Additive inverse.
    #[must_use]
    pub fn neg(&self) -> FieldElement {
        FieldElement::ZERO.sub(self)
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, other: &FieldElement) -> FieldElement {
        let mut t = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let v = (t[i + j] as u128) + (self.0[i] as u128) * (other.0[j] as u128) + carry;
                t[i + j] = v as u64;
                carry = v >> 64;
            }
            t[i + 4] = carry as u64;
        }
        reduce_wide(&t)
    }

    /// Field squaring.
    #[must_use]
    pub fn square(&self) -> FieldElement {
        self.mul(self)
    }

    /// Raises this element to the power given by `exponent` (little-endian
    /// limbs) using square-and-multiply.
    #[must_use]
    pub fn pow(&self, exponent: &[u64; 4]) -> FieldElement {
        let mut result = FieldElement::ONE;
        // Process from the most significant bit downwards.
        for limb_index in (0..4).rev() {
            for bit in (0..64).rev() {
                result = result.square();
                if (exponent[limb_index] >> bit) & 1 == 1 {
                    result = result.mul(self);
                }
            }
        }
        result
    }

    /// Multiplicative inverse (returns zero for zero).
    #[must_use]
    pub fn invert(&self) -> FieldElement {
        // p - 2 = 2^255 - 21.
        const P_MINUS_2: [u64; 4] = [
            0xffff_ffff_ffff_ffeb,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0x7fff_ffff_ffff_ffff,
        ];
        self.pow(&P_MINUS_2)
    }

    /// Computes x such that `x² · v = u`, if it exists.
    ///
    /// This is the square-root-of-ratio operation used for Ed25519 point
    /// decompression. Returns `None` when `u/v` is not a square.
    #[must_use]
    pub fn sqrt_ratio(u: &FieldElement, v: &FieldElement) -> Option<FieldElement> {
        // (p - 5) / 8 = 2^252 - 3.
        const P_MINUS_5_DIV_8: [u64; 4] = [
            0xffff_ffff_ffff_fffd,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0x0fff_ffff_ffff_ffff,
        ];
        if v.is_zero() {
            return if u.is_zero() {
                Some(FieldElement::ZERO)
            } else {
                None
            };
        }
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut x = u.mul(&v3).mul(&u.mul(&v7).pow(&P_MINUS_5_DIV_8));
        let check = v.mul(&x.square());
        let neg_u = u.neg();
        if check == *u {
            Some(x)
        } else if check == neg_u {
            x = x.mul(&FieldElement::SQRT_M1);
            Some(x)
        } else {
            None
        }
    }

    /// Selects `other` if `choice` is true, `self` otherwise.
    #[must_use]
    pub fn select(&self, other: &FieldElement, choice: bool) -> FieldElement {
        if choice {
            *other
        } else {
            *self
        }
    }
}

fn reduce_wide(t: &[u64; 8]) -> FieldElement {
    // 2^256 ≡ 38 (mod p): fold the high 256 bits multiplied by 38.
    let mut r = [0u64; 4];
    let mut carry: u128 = 0;
    for i in 0..4 {
        let v = (t[i] as u128) + (t[i + 4] as u128) * 38 + carry;
        r[i] = v as u64;
        carry = v >> 64;
    }
    // carry < 39; fold once more (at most twice in the degenerate wrap case).
    let mut extra = (carry as u64) * 38;
    while extra != 0 {
        let mut c = extra as u128;
        extra = 0;
        for limb in &mut r {
            if c == 0 {
                break;
            }
            let v = (*limb as u128) + c;
            *limb = v as u64;
            c = v >> 64;
        }
        if c != 0 {
            extra = (c as u64) * 38;
        }
    }
    FieldElement(r).canonicalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(n: u64) -> FieldElement {
        FieldElement::from_u64(n)
    }

    #[test]
    fn add_sub_round_trip() {
        let a = fe(1234567);
        let b = fe(7654321);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&b).add(&b), a);
    }

    #[test]
    fn additive_identity_and_inverse() {
        let a = fe(99);
        assert_eq!(a.add(&FieldElement::ZERO), a);
        assert_eq!(a.add(&a.neg()), FieldElement::ZERO);
        assert_eq!(FieldElement::ZERO.neg(), FieldElement::ZERO);
    }

    #[test]
    fn multiplicative_identity_and_inverse() {
        let a = fe(123456789);
        assert_eq!(a.mul(&FieldElement::ONE), a);
        assert_eq!(a.mul(&a.invert()), FieldElement::ONE);
    }

    #[test]
    fn small_multiplication() {
        assert_eq!(fe(6).mul(&fe(7)), fe(42));
        assert_eq!(fe(0).mul(&fe(7)), FieldElement::ZERO);
    }

    #[test]
    fn wraparound_at_p() {
        // (p - 1) + 2 = 1 (mod p)
        let p_minus_1 = FieldElement(P).sub(&FieldElement::ONE);
        assert_eq!(p_minus_1.add(&fe(2)), FieldElement::ONE);
        // (p - 1) * (p - 1) = 1 (mod p) since p-1 ≡ -1
        assert_eq!(p_minus_1.mul(&p_minus_1), FieldElement::ONE);
    }

    #[test]
    fn from_bytes_masks_high_bit() {
        let mut bytes = [0u8; 32];
        bytes[0] = 5;
        bytes[31] = 0x80;
        assert_eq!(FieldElement::from_bytes(&bytes), fe(5));
    }

    #[test]
    fn bytes_round_trip() {
        let a = fe(0xdead_beef_cafe_f00d);
        assert_eq!(FieldElement::from_bytes(&a.to_bytes()), a);
        let b = FieldElement::D;
        assert_eq!(FieldElement::from_bytes(&b.to_bytes()), b);
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let minus_one = FieldElement::ZERO.sub(&FieldElement::ONE);
        assert_eq!(FieldElement::SQRT_M1.square(), minus_one);
    }

    #[test]
    fn d2_is_twice_d() {
        assert_eq!(FieldElement::D.add(&FieldElement::D), FieldElement::D2);
    }

    #[test]
    fn sqrt_ratio_of_square() {
        let a = fe(12345);
        let sq = a.square();
        let root = FieldElement::sqrt_ratio(&sq, &FieldElement::ONE).expect("square has a root");
        assert!(root == a || root == a.neg());
    }

    #[test]
    fn sqrt_ratio_of_nonsquare_fails() {
        // 2 is a non-residue mod p (p ≡ 5 mod 8 and 2^((p-1)/2) = -1).
        assert!(FieldElement::sqrt_ratio(&fe(2), &FieldElement::ONE).is_none());
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = fe(3);
        let mut expected = FieldElement::ONE;
        for _ in 0..13 {
            expected = expected.mul(&a);
        }
        assert_eq!(a.pow(&[13, 0, 0, 0]), expected);
    }

    #[test]
    fn distributivity() {
        let a = fe(111);
        let b = fe(222);
        let c = fe(333);
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn inversion_of_one_and_minus_one() {
        assert_eq!(FieldElement::ONE.invert(), FieldElement::ONE);
        let minus_one = FieldElement::ONE.neg();
        assert_eq!(minus_one.invert(), minus_one);
    }
}
