//! HKDF (RFC 5869) based on HMAC-SHA-256.
//!
//! Used to derive per-session attestation keys and channel keys during TNIC
//! bootstrapping and remote attestation (paper §4.3).

use crate::hmac::hmac_sha256;

/// Extracts a pseudorandom key from `ikm` using `salt`.
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// Expands `prk` into `out_len` bytes of output keying material bound to `info`.
///
/// # Panics
///
/// Panics if `out_len > 255 * 32`, the RFC 5869 limit.
#[must_use]
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * 32, "hkdf output length too large");
    let mut okm = Vec::with_capacity(out_len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter: u8 = 1;
    while okm.len() < out_len {
        let mut data = Vec::with_capacity(previous.len() + info.len() + 1);
        data.extend_from_slice(&previous);
        data.extend_from_slice(info);
        data.push(counter);
        let block = hmac_sha256(prk, &data);
        previous = block.to_vec();
        okm.extend_from_slice(&block);
        counter = counter.wrapping_add(1);
    }
    okm.truncate(out_len);
    okm
}

/// One-shot extract-then-expand.
///
/// # Example
///
/// ```
/// let key = tnic_crypto::hkdf::hkdf(b"salt", b"shared-secret", b"tnic session 7", 32);
/// assert_eq!(key.len(), 32);
/// ```
#[must_use]
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, out_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00u8..=0x0c).collect();
        let info: Vec<u8> = (0xf0u8..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3: empty salt and info.
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn output_lengths() {
        for len in [1usize, 31, 32, 33, 64, 100] {
            assert_eq!(hkdf(b"s", b"ikm", b"info", len).len(), len);
        }
    }

    #[test]
    fn different_info_yields_different_keys() {
        let a = hkdf(b"s", b"ikm", b"session-1", 32);
        let b = hkdf(b"s", b"ikm", b"session-2", 32);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "hkdf output length too large")]
    fn too_long_output_panics() {
        let _ = hkdf(b"s", b"ikm", b"info", 255 * 32 + 1);
    }
}
