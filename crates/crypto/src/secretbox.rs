//! Authenticated encryption: ChaCha20 + HMAC-SHA-256 (encrypt-then-MAC).
//!
//! The remote-attestation protocol (paper §4.3) ends with the IP vendor
//! sending the TNIC bitstream and the session secrets over a mutually
//! authenticated channel. This module provides the channel's record
//! protection. We use encrypt-then-MAC instead of Poly1305 to keep the
//! from-scratch substrate small; the construction is still a standard AEAD
//! composition (documented in DESIGN.md).

use crate::chacha20::{chacha20_apply, KEY_LEN, NONCE_LEN};
use crate::ct::ct_eq;
use crate::error::CryptoError;
use crate::hkdf::hkdf;
use crate::hmac::hmac_sha256;

/// Length of the authentication tag appended to each ciphertext.
pub const TAG_LEN: usize = 32;

/// A symmetric authenticated-encryption key pair (cipher key + MAC key),
/// derived from a single 32-byte secret.
#[derive(Clone)]
pub struct SecretBox {
    enc_key: [u8; KEY_LEN],
    mac_key: [u8; 32],
}

impl std::fmt::Debug for SecretBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("SecretBox")
            .field("enc_key", &"<redacted>")
            .finish()
    }
}

impl SecretBox {
    /// Derives the cipher and MAC subkeys from `secret` using HKDF.
    #[must_use]
    pub fn new(secret: &[u8]) -> Self {
        let okm = hkdf(b"tnic-secretbox-v1", secret, b"enc|mac", 64);
        let mut enc_key = [0u8; KEY_LEN];
        let mut mac_key = [0u8; 32];
        enc_key.copy_from_slice(&okm[..32]);
        mac_key.copy_from_slice(&okm[32..]);
        SecretBox { enc_key, mac_key }
    }

    /// Encrypts `plaintext` with the given 12-byte `nonce` and returns
    /// `ciphertext || tag`. The `associated_data` is authenticated but not
    /// encrypted.
    #[must_use]
    pub fn seal(
        &self,
        nonce: &[u8; NONCE_LEN],
        associated_data: &[u8],
        plaintext: &[u8],
    ) -> Vec<u8> {
        let mut out = chacha20_apply(&self.enc_key, nonce, 1, plaintext);
        let tag = self.tag(nonce, associated_data, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts a message produced by [`SecretBox::seal`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidCiphertext`] if the tag does not verify
    /// or the input is shorter than a tag.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        associated_data: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::InvalidCiphertext);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.tag(nonce, associated_data, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::InvalidCiphertext);
        }
        Ok(chacha20_apply(&self.enc_key, nonce, 1, ciphertext))
    }

    fn tag(
        &self,
        nonce: &[u8; NONCE_LEN],
        associated_data: &[u8],
        ciphertext: &[u8],
    ) -> [u8; TAG_LEN] {
        let mut mac_input =
            Vec::with_capacity(NONCE_LEN + 8 + associated_data.len() + 8 + ciphertext.len());
        mac_input.extend_from_slice(nonce);
        mac_input.extend_from_slice(&(associated_data.len() as u64).to_le_bytes());
        mac_input.extend_from_slice(associated_data);
        mac_input.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
        mac_input.extend_from_slice(ciphertext);
        hmac_sha256(&self.mac_key, &mac_input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let sb = SecretBox::new(b"shared secret from x25519");
        let nonce = [9u8; 12];
        let sealed = sb.seal(&nonce, b"header", b"the bitstream");
        let opened = sb.open(&nonce, b"header", &sealed).unwrap();
        assert_eq!(opened, b"the bitstream");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let sb = SecretBox::new(b"k");
        let nonce = [0u8; 12];
        let mut sealed = sb.seal(&nonce, b"", b"secret payload");
        sealed[0] ^= 0xff;
        assert_eq!(
            sb.open(&nonce, b"", &sealed),
            Err(CryptoError::InvalidCiphertext)
        );
    }

    #[test]
    fn tampered_tag_rejected() {
        let sb = SecretBox::new(b"k");
        let nonce = [0u8; 12];
        let mut sealed = sb.seal(&nonce, b"", b"secret payload");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x01;
        assert!(sb.open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn wrong_associated_data_rejected() {
        let sb = SecretBox::new(b"k");
        let nonce = [0u8; 12];
        let sealed = sb.seal(&nonce, b"session-1", b"payload");
        assert!(sb.open(&nonce, b"session-2", &sealed).is_err());
    }

    #[test]
    fn wrong_nonce_rejected() {
        let sb = SecretBox::new(b"k");
        let sealed = sb.seal(&[1u8; 12], b"", b"payload");
        assert!(sb.open(&[2u8; 12], b"", &sealed).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = SecretBox::new(b"k1").seal(&[0u8; 12], b"", b"payload");
        assert!(SecretBox::new(b"k2")
            .open(&[0u8; 12], b"", &sealed)
            .is_err());
    }

    #[test]
    fn short_input_rejected() {
        let sb = SecretBox::new(b"k");
        assert_eq!(
            sb.open(&[0u8; 12], b"", &[0u8; 5]),
            Err(CryptoError::InvalidCiphertext)
        );
    }

    #[test]
    fn empty_plaintext_round_trip() {
        let sb = SecretBox::new(b"k");
        let sealed = sb.seal(&[3u8; 12], b"ad", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(sb.open(&[3u8; 12], b"ad", &sealed).unwrap(), b"");
    }

    #[test]
    fn debug_does_not_leak_key() {
        let sb = SecretBox::new(b"super secret");
        let dbg = format!("{sb:?}");
        assert!(dbg.contains("redacted"));
        assert!(!dbg.contains("super"));
    }
}
