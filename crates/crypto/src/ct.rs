//! Constant-time comparison helpers.
//!
//! The attestation kernel compares received HMAC attestations against locally
//! recomputed ones; doing so with a short-circuiting comparison would leak the
//! position of the first mismatching byte. These helpers compare in time that
//! depends only on the input length.

/// Compares two byte slices in constant time (with respect to their content).
///
/// Returns `true` if and only if `a` and `b` have the same length and content.
///
/// # Example
///
/// ```
/// use tnic_crypto::ct::ct_eq;
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"ab"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff: u8 = 0;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Conditionally selects `b` when `choice` is 1 and `a` when `choice` is 0.
///
/// `choice` must be 0 or 1; any other value produces an unspecified mixture.
#[must_use]
pub fn ct_select_u64(a: u64, b: u64, choice: u64) -> u64 {
    let mask = choice.wrapping_neg();
    (a & !mask) | (b & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
        assert!(!ct_eq(&[0], &[]));
    }

    #[test]
    fn select() {
        assert_eq!(ct_select_u64(7, 9, 0), 7);
        assert_eq!(ct_select_u64(7, 9, 1), 9);
    }
}
