//! Cryptographic substrate for the TNIC reproduction.
//!
//! The TNIC paper's attestation kernel is built around HMAC over message
//! payloads, its remote-attestation protocol (Fig. 3) around device key pairs,
//! signatures and a mutually authenticated encrypted channel. This crate
//! provides all of those primitives implemented from scratch so the trusted
//! computing base of the simulated hardware is self-contained:
//!
//! * [`sha256`] / [`sha512`] — FIPS 180-4 hash functions.
//! * [`hmac`] — HMAC (RFC 2104) over either hash.
//! * [`hkdf`] — HKDF (RFC 5869) key derivation for session keys.
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439).
//! * [`secretbox`] — authenticated encryption via ChaCha20 + HMAC-SHA-256
//!   (encrypt-then-MAC), used for bitstream/secret delivery.
//! * [`field25519`], [`scalar25519`], [`edwards`] — Curve25519 arithmetic.
//! * [`ed25519`] — Ed25519 signatures (RFC 8032) for controller and client
//!   certificates.
//! * [`x25519`] — X25519 Diffie–Hellman (RFC 7748) for the attestation channel.
//!
//! # Security disclaimer
//!
//! The implementations favour clarity over side-channel resistance: scalar
//! multiplication is not constant time and no blinding is applied. This is a
//! research simulation substrate, not a production cryptography library.
//!
//! # Example
//!
//! ```
//! use tnic_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"session-key", b"message||device||counter");
//! assert_eq!(tag.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha20;
pub mod ct;
pub mod ed25519;
pub mod edwards;
pub mod error;
pub mod field25519;
pub mod hkdf;
pub mod hmac;
pub mod scalar25519;
pub mod secretbox;
pub mod sha256;
pub mod sha512;
pub mod x25519;

pub use error::CryptoError;
pub use hmac::{hmac_sha256, hmac_sha512};
pub use sha256::Sha256;
pub use sha512::Sha512;
