//! The twisted Edwards curve −x² + y² = 1 + d·x²y² over GF(2²⁵⁵ − 19)
//! (the Ed25519 curve), in extended homogeneous coordinates.

use crate::error::CryptoError;
use crate::field25519::FieldElement;

/// A point on the Ed25519 curve in extended coordinates (X : Y : Z : T) with
/// x = X/Z, y = Y/Z and T = XY/Z.
#[derive(Debug, Clone, Copy)]
pub struct EdwardsPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
    t: FieldElement,
}

impl EdwardsPoint {
    /// The identity element (0, 1).
    pub const IDENTITY: EdwardsPoint = EdwardsPoint {
        x: FieldElement::ZERO,
        y: FieldElement::ONE,
        z: FieldElement::ONE,
        t: FieldElement::ZERO,
    };

    /// The standard base point B with y = 4/5.
    #[must_use]
    pub fn basepoint() -> EdwardsPoint {
        let x = FieldElement([
            0xc956_2d60_8f25_d51a,
            0x692c_c760_9525_a7b2,
            0xc0a4_e231_fdd6_dc5c,
            0x2169_36d3_cd6e_53fe,
        ]);
        let y = FieldElement([
            0x6666_6666_6666_6658,
            0x6666_6666_6666_6666,
            0x6666_6666_6666_6666,
            0x6666_6666_6666_6666,
        ]);
        EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x.mul(&y),
        }
    }

    /// Point addition (unified formulas, valid for doubling as well).
    #[must_use]
    pub fn add(&self, other: &EdwardsPoint) -> EdwardsPoint {
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(&FieldElement::D2).mul(&other.t);
        let d = self.z.mul(&other.z).add(&self.z.mul(&other.z));
        let e = b.sub(&a);
        let f = d.sub(&c);
        let g = d.add(&c);
        let h = b.add(&a);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Point doubling.
    #[must_use]
    pub fn double(&self) -> EdwardsPoint {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(&self.z.square());
        let d = a.neg();
        let e = self.x.add(&self.y).square().sub(&a).sub(&b);
        let g = d.add(&b);
        let f = g.sub(&c);
        let h = d.sub(&b);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Negation: (x, y) ↦ (−x, y).
    #[must_use]
    pub fn neg(&self) -> EdwardsPoint {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication by a 256-bit little-endian scalar (double-and-add).
    ///
    /// The scalar is used as-is (no reduction, no clamping); callers decide
    /// whether to clamp (X25519-style secret keys) or reduce (signature math).
    #[must_use]
    pub fn scalar_mul(&self, scalar_le: &[u8; 32]) -> EdwardsPoint {
        let mut result = EdwardsPoint::IDENTITY;
        for byte_index in (0..32).rev() {
            for bit in (0..8).rev() {
                result = result.double();
                if (scalar_le[byte_index] >> bit) & 1 == 1 {
                    result = result.add(self);
                }
            }
        }
        result
    }

    /// Multiplies the standard base point by a scalar.
    #[must_use]
    pub fn basepoint_mul(scalar_le: &[u8; 32]) -> EdwardsPoint {
        EdwardsPoint::basepoint().scalar_mul(scalar_le)
    }

    /// Compresses the point to its 32-byte Ed25519 encoding
    /// (y with the sign of x in the top bit).
    #[must_use]
    pub fn compress(&self) -> [u8; 32] {
        let z_inv = self.z.invert();
        let x = self.x.mul(&z_inv);
        let y = self.y.mul(&z_inv);
        let mut bytes = y.to_bytes();
        if x.is_negative() {
            bytes[31] |= 0x80;
        }
        bytes
    }

    /// Decompresses a 32-byte Ed25519 point encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPoint`] if the encoding does not
    /// correspond to a point on the curve.
    pub fn decompress(bytes: &[u8; 32]) -> Result<EdwardsPoint, CryptoError> {
        let sign = (bytes[31] >> 7) & 1;
        let y = FieldElement::from_bytes(bytes);
        let y_sq = y.square();
        let u = y_sq.sub(&FieldElement::ONE);
        let v = y_sq.mul(&FieldElement::D).add(&FieldElement::ONE);
        let mut x = FieldElement::sqrt_ratio(&u, &v).ok_or(CryptoError::InvalidPoint)?;
        if x.is_zero() && sign == 1 {
            return Err(CryptoError::InvalidPoint);
        }
        if u64::from(x.is_negative()) != u64::from(sign) {
            x = x.neg();
        }
        Ok(EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x.mul(&y),
        })
    }

    /// Returns `true` if this is the identity element.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        // x == 0 and y == z
        let z_inv = self.z.invert();
        self.x.mul(&z_inv).is_zero() && self.y.mul(&z_inv) == FieldElement::ONE
    }

    /// Checks whether the affine coordinates satisfy the curve equation.
    #[must_use]
    pub fn is_on_curve(&self) -> bool {
        let z_inv = self.z.invert();
        let x = self.x.mul(&z_inv);
        let y = self.y.mul(&z_inv);
        let x2 = x.square();
        let y2 = y.square();
        let lhs = y2.sub(&x2);
        let rhs = FieldElement::ONE.add(&FieldElement::D.mul(&x2).mul(&y2));
        lhs == rhs
    }
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        // Compare affine coordinates: X1*Z2 == X2*Z1 and Y1*Z2 == Y2*Z1.
        self.x.mul(&other.z) == other.x.mul(&self.z) && self.y.mul(&other.z) == other.y.mul(&self.z)
    }
}

impl Eq for EdwardsPoint {}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_bytes(n: u64) -> [u8; 32] {
        let mut b = [0u8; 32];
        b[..8].copy_from_slice(&n.to_le_bytes());
        b
    }

    #[test]
    fn basepoint_is_on_curve() {
        assert!(EdwardsPoint::basepoint().is_on_curve());
    }

    #[test]
    fn identity_is_on_curve_and_neutral() {
        let b = EdwardsPoint::basepoint();
        assert!(EdwardsPoint::IDENTITY.is_on_curve());
        assert_eq!(b.add(&EdwardsPoint::IDENTITY), b);
        assert_eq!(EdwardsPoint::IDENTITY.add(&b), b);
    }

    #[test]
    fn double_matches_add() {
        let b = EdwardsPoint::basepoint();
        assert_eq!(b.double(), b.add(&b));
        let b4 = b.double().double();
        assert_eq!(b4, b.add(&b).add(&b).add(&b));
        assert!(b4.is_on_curve());
    }

    #[test]
    fn addition_is_commutative_and_associative() {
        let b = EdwardsPoint::basepoint();
        let p = b.double();
        let q = b.double().double().add(&b);
        assert_eq!(p.add(&q), q.add(&p));
        assert_eq!(p.add(&q).add(&b), p.add(&q.add(&b)));
    }

    #[test]
    fn negation_cancels() {
        let b = EdwardsPoint::basepoint();
        assert!(b.add(&b.neg()).is_identity());
    }

    #[test]
    fn scalar_mul_small_values() {
        let b = EdwardsPoint::basepoint();
        assert!(b.scalar_mul(&scalar_bytes(0)).is_identity());
        assert_eq!(b.scalar_mul(&scalar_bytes(1)), b);
        assert_eq!(b.scalar_mul(&scalar_bytes(2)), b.double());
        assert_eq!(b.scalar_mul(&scalar_bytes(5)), b.double().double().add(&b));
    }

    #[test]
    fn scalar_mul_distributes_over_addition() {
        let b = EdwardsPoint::basepoint();
        let p3 = b.scalar_mul(&scalar_bytes(3));
        let p7 = b.scalar_mul(&scalar_bytes(7));
        let p10 = b.scalar_mul(&scalar_bytes(10));
        assert_eq!(p3.add(&p7), p10);
    }

    #[test]
    fn order_l_times_basepoint_is_identity() {
        let mut l_bytes = [0u8; 32];
        for (i, limb) in crate::scalar25519::L.iter().enumerate() {
            l_bytes[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        assert!(EdwardsPoint::basepoint_mul(&l_bytes).is_identity());
    }

    #[test]
    fn compress_decompress_round_trip() {
        let b = EdwardsPoint::basepoint();
        for n in [1u64, 2, 3, 17, 255, 65537] {
            let p = b.scalar_mul(&scalar_bytes(n));
            let enc = p.compress();
            let dec = EdwardsPoint::decompress(&enc).expect("valid point");
            assert_eq!(dec, p, "n = {n}");
            assert!(dec.is_on_curve());
        }
    }

    #[test]
    fn basepoint_compresses_to_rfc_encoding() {
        // RFC 8032: the encoding of the base point is 0x5866666666...66.
        let enc = EdwardsPoint::basepoint().compress();
        assert_eq!(enc[0], 0x58);
        assert!(enc[1..31].iter().all(|&b| b == 0x66));
        assert_eq!(enc[31], 0x66);
    }

    #[test]
    fn decompress_rejects_invalid_encoding() {
        // y = 7 does not correspond to a curve point with the given sign bits
        // for at least one of the two sign choices combined with tampering.
        let mut bytes = [0u8; 32];
        bytes[0] = 2; // y = 2 is not on the curve
        assert!(EdwardsPoint::decompress(&bytes).is_err());
    }
}
