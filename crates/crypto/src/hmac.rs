//! HMAC (RFC 2104) over SHA-256 and SHA-512.
//!
//! The TNIC attestation kernel (paper §4.1, Algorithm 1) computes
//! `α = hmac(keys[c_id], msg || ID || cnt)`; this module provides that
//! primitive for both the simulated NIC hardware and the host-side TEE
//! baselines.

use crate::sha256::{self, Sha256};
use crate::sha512::{self, Sha512};

/// Computes `HMAC-SHA-256(key, message)`.
///
/// Keys of any length are accepted: keys longer than the block size are
/// hashed first, exactly as RFC 2104 prescribes.
///
/// # Example
///
/// ```
/// use tnic_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(tag[0], 0xf7);
/// ```
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut ctx = HmacSha256::new(key);
    ctx.update(message);
    ctx.finalize()
}

/// Computes `HMAC-SHA-512(key, message)`.
#[must_use]
pub fn hmac_sha512(key: &[u8], message: &[u8]) -> [u8; 64] {
    const BLOCK: usize = sha512::BLOCK_LEN;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..64].copy_from_slice(&sha512::sha512(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha512::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha512::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Incremental HMAC-SHA-256 context.
///
/// Useful when the authenticated message is assembled from several parts
/// (payload, device id, counter) without intermediate copies, which is how the
/// attestation kernel's data path operates.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad: [u8; sha256::BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a new context keyed with `key`.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        const BLOCK: usize = sha256::BLOCK_LEN;
        let mut key_block = [0u8; BLOCK];
        if key.len() > BLOCK {
            key_block[..32].copy_from_slice(&sha256::sha256(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad }
    }

    /// Feeds more message bytes into the MAC.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the computation and returns the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Verifies an HMAC-SHA-256 tag in constant time.
#[must_use]
pub fn verify_hmac_sha256(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    crate::ct::ct_eq(&hmac_sha256(key, message), tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&hmac_sha512(&key, data)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex(&hmac_sha256(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn wikipedia_fox_vector() {
        assert_eq!(
            hex(&hmac_sha256(
                b"key",
                b"The quick brown fox jumps over the lazy dog"
            )),
            "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"session-key-0123456789";
        let parts: [&[u8]; 3] = [b"message", b"||device-7||", b"counter-42"];
        let joined: Vec<u8> = parts.concat();
        let mut ctx = HmacSha256::new(key);
        for p in parts {
            ctx.update(p);
        }
        assert_eq!(ctx.finalize(), hmac_sha256(key, &joined));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac_sha256(b"k", b"m", &tag));
        assert!(!verify_hmac_sha256(b"k", b"m2", &tag));
        assert!(!verify_hmac_sha256(b"k2", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"k", b"m", &bad));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"a", b"msg"), hmac_sha256(b"b", b"msg"));
    }
}
