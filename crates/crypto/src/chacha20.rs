//! The ChaCha20 stream cipher (RFC 8439).
//!
//! Used by [`crate::secretbox`] to protect the configuration bitstream and the
//! session secrets that the IP vendor ships to a TNIC device during remote
//! attestation (paper §4.3, steps 8–9).

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn initial_state(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    state
}

/// Produces one 64-byte keystream block for the given block `counter`.
#[must_use]
pub fn chacha20_block(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; 64] {
    let initial = initial_state(key, nonce, counter);
    let mut working = initial;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(initial[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR with the keystream), starting at
/// block `initial_counter`.
pub fn chacha20_xor(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    for (block_index, chunk) in data.chunks_mut(64).enumerate() {
        let counter = initial_counter.wrapping_add(block_index as u32);
        let keystream = chacha20_block(key, nonce, counter);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
    }
}

/// Convenience wrapper returning a new buffer rather than mutating in place.
#[must_use]
pub fn chacha20_apply(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &[u8],
) -> Vec<u8> {
    let mut out = data.to_vec();
    chacha20_xor(key, nonce, initial_counter, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn key_rfc() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let key = key_rfc();
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let block = chacha20_block(&key, &nonce, 1);
        assert_eq!(hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(hex(&block[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt() {
        let key = key_rfc();
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let ciphertext = chacha20_apply(&key, &nonce, 1, plaintext);
        assert_eq!(
            hex(&ciphertext[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        // Round trip.
        let decrypted = chacha20_apply(&key, &nonce, 1, &ciphertext);
        assert_eq!(decrypted, plaintext);
    }

    #[test]
    fn xor_is_involution_for_any_length() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        for len in [0usize, 1, 63, 64, 65, 200] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let enc = chacha20_apply(&key, &nonce, 0, &data);
            let dec = chacha20_apply(&key, &nonce, 0, &enc);
            assert_eq!(dec, data, "len {len}");
            if len > 0 {
                assert_ne!(enc, data, "ciphertext should differ, len {len}");
            }
        }
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let key = [1u8; 32];
        let a = chacha20_block(&key, &[0u8; 12], 0);
        let b = chacha20_block(&key, &[1u8; 12], 0);
        assert_ne!(a, b);
    }
}
