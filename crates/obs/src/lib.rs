//! Protocol-aware observability for the TNIC accountability stack.
//!
//! The rest of the workspace answers *what happened* with counters
//! ([`tnic_sim::stats`], `AccountabilityStats`); this crate answers *why*:
//! every protocol-relevant step — a datapath attest, a witness challenge, a
//! replay, a verdict flip — is recorded as a fixed-size structured [`Event`]
//! that can later be assembled into causal timelines
//! ([`timeline::explain_verdict`]) and rendered into per-run reports.
//!
//! # Recorder model
//!
//! Instrumented crates emit events with the [`trace_event!`] macro. The macro
//! forwards to a process-wide (thread-local — the simulator is
//! single-threaded) recorder slot that is **empty by default**. A harness
//! opts in by installing a recorder:
//!
//! ```
//! use tnic_obs::{EventKind, RecorderGuard};
//!
//! let guard = RecorderGuard::install(4096); // preallocated ring, 4096 events
//! tnic_obs::trace_event!(EventKind::Attest, node: 1, seq: 7, aux: 64);
//! let events = guard.snapshot();
//! assert_eq!(events.len(), 1);
//! ```
//!
//! Recorders are pluggable: anything implementing [`Recorder`] can be
//! installed with [`install_recorder`]. The default [`RingRecorder`] is a
//! preallocated ring buffer — once full it overwrites the oldest events and
//! counts them in [`RingRecorder::dropped`], so long runs keep the *recent*
//! history (what a report needs to explain the last verdicts) at a fixed
//! memory budget.
//!
//! # Zero-overhead guarantee
//!
//! The instrumentation must not disturb what it measures, in particular the
//! CI-gated 0 allocs/message datapath:
//!
//! - **No recorder installed** (the default): `trace_event!` evaluates a
//!   single thread-local boolean and branches away. None of the field
//!   expressions are evaluated.
//! - **Recorder installed**: [`Event`] is a small `Copy` struct written into
//!   a ring slot that was allocated once at install time. Recording an event
//!   never allocates, so the datapath stays at 0 allocs/message with tracing
//!   *enabled* (the zerocopy bench gates exactly this).
//! - **Compiled out**: building `tnic-obs` with `--no-default-features`
//!   turns [`tracing_enabled`] into a constant `false`; the optimiser then
//!   removes every `trace_event!` expansion entirely.
//!
//! # Adding an event kind
//!
//! 1. Add a variant to [`EventKind`] (append — keep existing discriminants
//!    stable so recorded streams stay comparable across runs) and extend
//!    [`EventKind::ALL`] and [`EventKind::label`]. The
//!    `all_covers_every_variant` test holds an exhaustive `match` over the
//!    enum, so forgetting `ALL` is a compile error in `cargo test`, not a
//!    silently unaggregated kind.
//! 2. Document the field conventions for the new kind on the variant: what
//!    `node`/`peer`/`seq`/`round`/`aux` mean. Every kind uses the same
//!    fixed struct; `aux` carries the kind-specific code.
//! 3. Emit it from the instrumented crate with
//!    `trace_event!(EventKind::YourKind, node: ..., aux: ...)` — omitted
//!    fields default to [`Event::EMPTY`].
//! 4. If reports should aggregate it, teach `tnic_bench`'s report generator
//!    (and, for protocol steps, [`timeline`]) about the new kind.
//!
//! # Cross-node trace identity
//!
//! A message's trace id is not an extra wire field: the attested header
//! every message already carries — the **(sender, attestation counter)**
//! pair — uniquely names one send, and both the sender's [`EventKind::Send`]
//! and the receiver's [`EventKind::Recv`] record it (`node`/`peer` are the
//! endpoints, `seq` is the counter). [`assemble::TraceAssembler`] joins the
//! two sides on that key into happens-before edges, so the whole
//! send → attest → net-deliver → verify → log-append → commitment →
//! challenge → audit-replay → verdict lifecycle is one causally linked
//! cross-node trace with **zero bytes added to any envelope** (and the
//! 0 allocs/message datapath untouched). [`assemble::trace_id`] packs the
//! pair into the single `u64` exporters use as the flow id.
//!
//! # Debugging a verdict
//!
//! The intended post-mortem workflow when a CI gate fails or a verdict
//! comes out wrong:
//!
//! 1. **Start from the flight-recorder dump.** `reproduce`/`sweep` write
//!    `reports/flightrec-*.json` automatically whenever a named gate fails
//!    (the `reports/` directory is uploaded as a CI artifact, so every red
//!    run carries its own post-mortem). The dump names the failing gates
//!    and embeds a bounded event trace, the metrics registry snapshot and
//!    the log-composition breakdown — see [`flight`].
//! 2. **Assemble the timeline.** Feed the recorded events to
//!    [`assemble::TraceAssembler`]: [`assemble::TraceAssembler::ordered`]
//!    returns the cluster-wide causally ordered timeline (every recv after
//!    its send, per-node order preserved), and
//!    [`assemble::TraceAssembler::pair_spans`] the per-(witness, node)
//!    protocol-phase spans generalizing [`timeline::explain_verdict`].
//! 3. **Open it in Perfetto.** `reproduce --trace-out DIR` (or
//!    [`export::chrome_trace`] on any snapshot) writes Chrome trace-event
//!    JSON: one track per node, an instant per protocol event, flow arrows
//!    for every cross-node message edge and one span per audit phase. Load
//!    it at <https://ui.perfetto.dev> and follow the flow arrows from the
//!    tampered send to the exposing verdict. [`export::jsonl`] is the same
//!    data in grep-friendly JSONL.
//! 4. **Check for truncation.** If the ring wrapped during the run the
//!    report warns and [`Recorder::dropped_by_node`] says whose history is
//!    incomplete — re-run with a larger ring before trusting a partial
//!    timeline.
//! 5. **Reading log-composition numbers.** `LogAppend` events carry the
//!    entry class in `aux` ([`codes::LOG_APP_PAYLOAD`] /
//!    [`codes::LOG_CONTROL_DIGEST`] / [`codes::LOG_AUDIT_DIGEST`]). Since
//!    audit-protocol traffic is batched into one round-digest entry per
//!    node per audit round (`EntryKind::AuditRound` in
//!    `tnic_peerreview::log`), a *low* audit-digest count is the expected
//!    shape; a run where audit digests grow with the per-round challenge
//!    volume means batching is off (`round_audit_digests: false`) or the
//!    classifier missed a carrier. A verdict labelled
//!    `round-digest-mismatch` ([`codes::MIS_ROUND_DIGEST_MISMATCH`]) means
//!    a replayed round-digest entry was internally inconsistent — the
//!    node's accumulated digest did not match its own carried envelope
//!    list; a *self-consistent* forgery of the same entry surfaces as
//!    `head-mismatch` against the sealed commitment instead.

pub mod assemble;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod timeline;

use std::cell::{Cell, RefCell};

/// The static vocabulary of protocol events.
///
/// Field conventions (`node`/`peer`/`seq`/`round`/`aux`) are given per kind;
/// unused fields stay at their [`Event::EMPTY`] defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Cluster-level attested send: `node` sender, `peer` receiver,
    /// `seq` attestation counter, `aux` payload bytes.
    Send = 0,
    /// Cluster-level verified delivery: `node` receiver, `peer` sender,
    /// `seq` attestation counter, `aux` 0 = accepted / 1 = rejected.
    Recv = 1,
    /// Device TX datapath attest: `node` device id, `seq` send counter,
    /// `aux` payload bytes.
    Attest = 2,
    /// Device RX datapath verify: `node` device id, `seq` receive counter,
    /// `aux` payload bytes.
    Verify = 3,
    /// A witness stored a commitment: `node` witness, `peer` committer,
    /// `seq` committed log sequence, `round` audit round.
    Commitment = 4,
    /// A witness issued an audit challenge: `node` witness, `peer` audited
    /// node, `seq` challenged upper log sequence, `round` audit round.
    Challenge = 5,
    /// A witness received an audit response: `node` witness, `peer` audited
    /// node, `seq` response base sequence, `aux` entry count.
    Response = 6,
    /// A witness replayed a log segment against its reference state machine:
    /// `node` witness, `peer` audited node, `seq` replayed upper sequence,
    /// `aux` 0 = consistent / misbehavior code (see [`codes`]).
    AuditReplay = 7,
    /// Evidence transfer between witnesses: `node` receiving witness,
    /// `peer` sending witness, `aux` 0 = verified / 1 = rejected.
    Evidence = 8,
    /// A witness verdict changed: `node` witness, `peer` judged node,
    /// `aux` packed transition (see [`codes::pack_verdict`]), `round` audit
    /// round when stamped by the engine.
    VerdictTransition = 9,
    /// Checkpoint lifecycle step: `node` actor, `peer` counterpart (or
    /// `NONE`), `seq` checkpointed sequence, `round` epoch,
    /// `aux` phase (see [`codes::CKPT_PROPOSE`] etc.).
    Checkpoint = 10,
    /// Log/commitment garbage collection: `node` pruning node, `seq` prune
    /// cut sequence, `aux` entries dropped.
    Prune = 11,
    /// Fabric delivered a packet: `node` destination address,
    /// `peer` source address, `seq` PSN, `aux` payload bytes.
    NetDeliver = 12,
    /// Fabric dropped a packet (link loss or adversary): `node` destination
    /// address, `peer` source address, `seq` PSN. Cluster-level drops to an
    /// unreachable endpoint carry a reason in `aux`
    /// ([`codes::DROP_DEPARTED`] etc.).
    NetDrop = 13,
    /// A node's membership phase changed: `node` the member, `aux` the new
    /// phase ([`codes::MEMBER_JOINING`] etc.), `round` audit round.
    Membership = 14,
    /// A network partition opened or healed: `aux` 0 = open / 1 = heal
    /// ([`codes::PARTITION_OPEN`]/[`codes::PARTITION_HEAL`]), `round` the
    /// partition-schedule round, `seq` the partitioned group size.
    Partition = 15,
    /// A witness re-issued an unanswered challenge (timeout–retry–backoff):
    /// `node` witness, `peer` audited node, `seq` challenged upper log
    /// sequence, `round` audit round, `aux` retry attempt (1-based).
    Retry = 16,
    /// A sampling witness selected a charge for audit this round: `node`
    /// witness, `peer` selected auditee, `round` audit round, `aux` the
    /// witness's sample size for the round.
    AuditSample = 17,
    /// A witness coalesced several challenges or responses to the same peer
    /// into one batch envelope: `node` sender, `peer` receiver, `round`
    /// audit round, `aux` elements in the batch.
    ChallengeBatch = 18,
    /// A node appended an entry to its tamper-evident log: `node` the
    /// appender, `peer` the message counterpart (`NONE` for exec/checkpoint
    /// entries), `seq` the absolute log sequence of the new entry, `aux`
    /// the entry class ([`codes::LOG_APP_PAYLOAD`],
    /// [`codes::LOG_CONTROL_DIGEST`] or [`codes::LOG_AUDIT_DIGEST`]).
    LogAppend = 19,
}

impl EventKind {
    /// All kinds, in discriminant order (for per-kind aggregation). The
    /// `all_covers_every_variant` test pins this list to the enum with an
    /// exhaustive `match`, so a new variant that is not added here fails to
    /// compile the test suite instead of silently missing aggregation.
    pub const ALL: [EventKind; 20] = [
        EventKind::Send,
        EventKind::Recv,
        EventKind::Attest,
        EventKind::Verify,
        EventKind::Commitment,
        EventKind::Challenge,
        EventKind::Response,
        EventKind::AuditReplay,
        EventKind::Evidence,
        EventKind::VerdictTransition,
        EventKind::Checkpoint,
        EventKind::Prune,
        EventKind::NetDeliver,
        EventKind::NetDrop,
        EventKind::Membership,
        EventKind::Partition,
        EventKind::Retry,
        EventKind::AuditSample,
        EventKind::ChallengeBatch,
        EventKind::LogAppend,
    ];

    /// Short stable label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Send => "send",
            EventKind::Recv => "recv",
            EventKind::Attest => "attest",
            EventKind::Verify => "verify",
            EventKind::Commitment => "commitment",
            EventKind::Challenge => "challenge",
            EventKind::Response => "response",
            EventKind::AuditReplay => "audit-replay",
            EventKind::Evidence => "evidence",
            EventKind::VerdictTransition => "verdict-transition",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Prune => "prune",
            EventKind::NetDeliver => "net-deliver",
            EventKind::NetDrop => "net-drop",
            EventKind::Membership => "membership",
            EventKind::Partition => "partition",
            EventKind::Retry => "retry",
            EventKind::AuditSample => "audit-sample",
            EventKind::ChallengeBatch => "challenge-batch",
            EventKind::LogAppend => "log-append",
        }
    }
}

/// Sentinel for an absent `node`/`peer` id.
pub const NONE: u32 = u32::MAX;

/// One recorded protocol event. Fixed-size and `Copy` so recording is a
/// plain slot write — no allocation, ever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Virtual time in microseconds (0 when the site has no clock).
    pub at_us: u64,
    /// Primary actor (kind-specific; see [`EventKind`]).
    pub node: u32,
    /// Counterpart actor, or [`NONE`].
    pub peer: u32,
    /// Kind-specific sequence number (log seq, counter, PSN).
    pub seq: u64,
    /// Audit round / checkpoint epoch, when the emitting site knows it.
    pub round: u64,
    /// Kind-specific code or size (see [`EventKind`] and [`codes`]).
    pub aux: u64,
}

impl Event {
    /// The all-defaults event used by [`trace_event!`] for omitted fields.
    pub const EMPTY: Event = Event {
        kind: EventKind::Send,
        at_us: 0,
        node: NONE,
        peer: NONE,
        seq: 0,
        round: 0,
        aux: 0,
    };
}

/// Stable numeric codes carried in [`Event::aux`], shared between the
/// instrumented crates (which encode) and the report generator (which
/// decodes).
pub mod codes {
    /// Verdict: node is trusted.
    pub const VERDICT_TRUSTED: u64 = 0;
    /// Verdict: node is suspected (unanswered challenge).
    pub const VERDICT_SUSPECTED: u64 = 1;
    /// Verdict: node is exposed with evidence.
    pub const VERDICT_EXPOSED: u64 = 2;

    /// No misbehavior (consistent replay).
    pub const MIS_NONE: u64 = 0;
    /// Conflicting commitments for one sequence number.
    pub const MIS_CONFLICTING_COMMITMENTS: u64 = 1;
    /// Response shorter than the challenged range.
    pub const MIS_TRUNCATED: u64 = 2;
    /// Response longer than the challenged range.
    pub const MIS_SURPLUS_ENTRIES: u64 = 3;
    /// Hash chain broken inside the response.
    pub const MIS_BROKEN_CHAIN: u64 = 4;
    /// Replayed head differs from the committed head.
    pub const MIS_HEAD_MISMATCH: u64 = 5;
    /// Replayed execution diverged from the committed outputs.
    pub const MIS_EXEC_DIVERGENCE: u64 = 6;
    /// Log conflicts with a certified checkpoint.
    pub const MIS_CHECKPOINT_MISMATCH: u64 = 7;
    /// Forged accusation turned against its accuser.
    pub const MIS_FORGED_ACCUSATION: u64 = 8;
    /// Round-digest audit entry internally inconsistent (the accumulated
    /// digest does not match the carried per-envelope digest list).
    pub const MIS_ROUND_DIGEST_MISMATCH: u64 = 9;

    /// Membership phase: node is bootstrapping into the witness protocol.
    pub const MEMBER_JOINING: u64 = 0;
    /// Membership phase: node participates fully.
    pub const MEMBER_ACTIVE: u64 = 1;
    /// Membership phase: node is sealing its log for departure.
    pub const MEMBER_LEAVING: u64 = 2;
    /// Membership phase: node left; its sealed log stays auditable.
    pub const MEMBER_DEPARTED: u64 = 3;
    /// Membership phase: node crash-stopped (unreachable, log intact).
    pub const MEMBER_CRASHED: u64 = 4;
    /// Membership phase: node rejoined and is re-proving its log head.
    pub const MEMBER_RECOVERING: u64 = 5;

    /// Human-readable membership-phase name.
    #[must_use]
    pub fn member_phase_name(code: u64) -> &'static str {
        match code {
            MEMBER_JOINING => "joining",
            MEMBER_ACTIVE => "active",
            MEMBER_LEAVING => "leaving",
            MEMBER_DEPARTED => "departed",
            MEMBER_CRASHED => "crashed",
            MEMBER_RECOVERING => "recovering",
            _ => "unknown",
        }
    }

    /// Partition transition: the schedule's cut became active.
    pub const PARTITION_OPEN: u64 = 0;
    /// Partition transition: the cut healed.
    pub const PARTITION_HEAL: u64 = 1;

    /// Net-drop reason: destination (or source) departed the membership.
    pub const DROP_DEPARTED: u64 = 1;
    /// Net-drop reason: destination (or source) is crash-stopped.
    pub const DROP_CRASHED: u64 = 2;
    /// Net-drop reason: an open partition separates the endpoints.
    pub const DROP_PARTITIONED: u64 = 3;

    /// Human-readable net-drop reason label.
    #[must_use]
    pub fn drop_reason_name(code: u64) -> &'static str {
        match code {
            DROP_DEPARTED => "departed",
            DROP_CRASHED => "crashed",
            DROP_PARTITIONED => "partitioned",
            _ => "adversary",
        }
    }

    /// Log-entry class: application payload logged in full (witnesses
    /// replay it against the reference machine).
    pub const LOG_APP_PAYLOAD: u64 = 0;
    /// Log-entry class: non-audit control message logged by digest
    /// (commitments, checkpoint traffic, membership, evidence).
    pub const LOG_CONTROL_DIGEST: u64 = 1;
    /// Log-entry class: audit-protocol message (challenge/response,
    /// batched or not) logged by digest — the class behind the O(w²)
    /// audit-log-inflation feedback.
    pub const LOG_AUDIT_DIGEST: u64 = 2;

    /// Human-readable log-entry-class label.
    #[must_use]
    pub fn log_class_name(code: u64) -> &'static str {
        match code {
            LOG_APP_PAYLOAD => "app-payload",
            LOG_CONTROL_DIGEST => "control-digest",
            LOG_AUDIT_DIGEST => "audit-digest",
            _ => "unknown",
        }
    }

    /// Checkpoint phase: proposal sealed/announced.
    pub const CKPT_PROPOSE: u64 = 0;
    /// Checkpoint phase: cosignature issued.
    pub const CKPT_COSIGN: u64 = 1;
    /// Checkpoint phase: quorum certificate assembled.
    pub const CKPT_CERTIFY: u64 = 2;

    /// Packs a verdict transition (and the misbehavior that caused it) into
    /// [`crate::Event::aux`].
    #[must_use]
    pub fn pack_verdict(old: u64, new: u64, misbehavior: u64) -> u64 {
        (old << 16) | (new << 8) | misbehavior
    }

    /// Inverse of [`pack_verdict`]: `(old, new, misbehavior)`.
    #[must_use]
    pub fn unpack_verdict(aux: u64) -> (u64, u64, u64) {
        ((aux >> 16) & 0xff, (aux >> 8) & 0xff, aux & 0xff)
    }

    /// Human-readable verdict name.
    #[must_use]
    pub fn verdict_name(code: u64) -> &'static str {
        match code {
            VERDICT_TRUSTED => "trusted",
            VERDICT_SUSPECTED => "suspected",
            VERDICT_EXPOSED => "exposed",
            _ => "unknown",
        }
    }

    /// Human-readable misbehavior name (matches `Misbehavior::label`).
    #[must_use]
    pub fn misbehavior_name(code: u64) -> &'static str {
        match code {
            MIS_NONE => "none",
            MIS_CONFLICTING_COMMITMENTS => "conflicting-commitments",
            MIS_TRUNCATED => "truncated-response",
            MIS_SURPLUS_ENTRIES => "surplus-entries",
            MIS_BROKEN_CHAIN => "broken-hash-chain",
            MIS_HEAD_MISMATCH => "head-mismatch",
            MIS_EXEC_DIVERGENCE => "execution-divergence",
            MIS_CHECKPOINT_MISMATCH => "checkpoint-mismatch",
            MIS_FORGED_ACCUSATION => "forged-accusation",
            MIS_ROUND_DIGEST_MISMATCH => "round-digest-mismatch",
            _ => "unknown",
        }
    }
}

/// A sink for trace events. Implementations must not allocate in
/// [`Recorder::record`] — that is what keeps the datapath at 0 allocs/msg
/// with tracing enabled.
pub trait Recorder {
    /// Accepts one event. Called on the hot path; must be allocation-free.
    fn record(&mut self, event: Event);
    /// Returns the retained events, oldest first. May allocate (cold path).
    fn snapshot(&self) -> Vec<Event>;
    /// Events discarded because the recorder ran out of space.
    fn dropped(&self) -> u64 {
        0
    }
    /// Discarded events broken down by the `node` field of the lost event
    /// (`(node, count)` pairs, ascending by node) — which node's history a
    /// wrapped ring truncated. May allocate (cold path).
    fn dropped_by_node(&self) -> Vec<(u32, u64)> {
        Vec::new()
    }
}

/// Per-node drop slots preallocated by [`RingRecorder`]: node ids at or
/// above the last slot share it, so counting a drop stays a plain indexed
/// increment (no allocation on the record path).
const NODE_DROP_SLOTS: usize = 1024;

/// The default recorder: a ring buffer preallocated at install time.
///
/// When full, new events overwrite the oldest; [`RingRecorder::dropped`]
/// counts the overwritten ones so reports can flag truncation instead of
/// silently presenting a partial history.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: Vec<Event>,
    next: usize,
    len: usize,
    dropped: u64,
    node_drops: Vec<u64>,
}

impl RingRecorder {
    /// Creates a ring holding up to `capacity` events (all slots allocated
    /// up front; `capacity` must be nonzero).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring recorder capacity must be nonzero");
        RingRecorder {
            buf: vec![Event::EMPTY; capacity],
            next: 0,
            len: 0,
            dropped: 0,
            node_drops: vec![0; NODE_DROP_SLOTS],
        }
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ring capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, event: Event) {
        if self.len == self.buf.len() {
            // The ring wraps: the oldest event is about to be overwritten.
            // Attribute the loss to the *discarded* event's node — that is
            // whose timeline just got truncated.
            self.dropped += 1;
            let node = self.buf[self.next].node as usize;
            let slot = node.min(NODE_DROP_SLOTS - 1);
            self.node_drops[slot] += 1;
        } else {
            self.len += 1;
        }
        self.buf[self.next] = event;
        self.next = (self.next + 1) % self.buf.len();
    }

    fn snapshot(&self) -> Vec<Event> {
        let cap = self.buf.len();
        let start = if self.len == cap { self.next } else { 0 };
        (0..self.len).map(|i| self.buf[(start + i) % cap]).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn dropped_by_node(&self) -> Vec<(u32, u64)> {
        self.node_drops
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(node, &n)| (node as u32, n))
            .collect()
    }
}

thread_local! {
    static RECORDER: RefCell<Option<Box<dyn Recorder>>> = const { RefCell::new(None) };
    static ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// Returns `true` if a recorder is installed (and the `trace` feature is
/// compiled in). `trace_event!` checks this before evaluating any of its
/// field expressions.
#[inline]
#[must_use]
pub fn tracing_enabled() -> bool {
    #[cfg(feature = "trace")]
    {
        ENABLED.try_with(Cell::get).unwrap_or(false)
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Installs a pluggable recorder, replacing (and returning) any previous one.
pub fn install_recorder(recorder: Box<dyn Recorder>) -> Option<Box<dyn Recorder>> {
    let previous = RECORDER.with(|slot| slot.borrow_mut().replace(recorder));
    ENABLED.with(|e| e.set(true));
    previous
}

/// Removes the installed recorder (tracing turns itself back off).
pub fn uninstall_recorder() -> Option<Box<dyn Recorder>> {
    ENABLED.with(|e| e.set(false));
    RECORDER.with(|slot| slot.borrow_mut().take())
}

/// Snapshot of the installed recorder's events (empty if none installed).
#[must_use]
pub fn snapshot() -> Vec<Event> {
    RECORDER.with(|slot| {
        slot.borrow()
            .as_ref()
            .map_or_else(Vec::new, |r| r.snapshot())
    })
}

/// Events dropped by the installed recorder (0 if none installed).
#[must_use]
pub fn dropped() -> u64 {
    RECORDER.with(|slot| slot.borrow().as_ref().map_or(0, |r| r.dropped()))
}

/// Per-node drop counts of the installed recorder (empty if none
/// installed or nothing was dropped) — see [`Recorder::dropped_by_node`].
#[must_use]
pub fn dropped_by_node() -> Vec<(u32, u64)> {
    RECORDER.with(|slot| {
        slot.borrow()
            .as_ref()
            .map_or_else(Vec::new, |r| r.dropped_by_node())
    })
}

/// Records one event into the installed recorder. Prefer [`trace_event!`],
/// which skips field evaluation when tracing is disabled.
#[inline]
pub fn emit(event: Event) {
    #[cfg(feature = "trace")]
    {
        let _ = RECORDER.try_with(|slot| {
            if let Some(recorder) = slot.borrow_mut().as_mut() {
                recorder.record(event);
            }
        });
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = event;
    }
}

/// RAII installation of a [`RingRecorder`]: uninstalls on drop so scenario
/// runs cannot leak tracing state into each other.
pub struct RecorderGuard {
    _private: (),
}

impl RecorderGuard {
    /// Installs a fresh ring recorder with `capacity` event slots.
    #[must_use]
    pub fn install(capacity: usize) -> Self {
        install_recorder(Box::new(RingRecorder::with_capacity(capacity)));
        RecorderGuard { _private: () }
    }

    /// Snapshot of the events recorded so far (oldest first).
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        snapshot()
    }

    /// Events overwritten because the ring filled up.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        dropped()
    }

    /// Overwritten events broken down by the lost event's node.
    #[must_use]
    pub fn dropped_by_node(&self) -> Vec<(u32, u64)> {
        dropped_by_node()
    }
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        let _ = uninstall_recorder();
    }
}

/// Records a structured protocol event if tracing is enabled.
///
/// The first argument is the [`EventKind`]; the rest are `field: value`
/// pairs for any subset of [`Event`]'s fields (omitted fields default to
/// [`Event::EMPTY`]). Field expressions are **not evaluated** when tracing
/// is disabled:
///
/// ```
/// use tnic_obs::EventKind;
/// tnic_obs::trace_event!(EventKind::Challenge, node: 2, peer: 0, seq: 17, round: 3);
/// ```
#[macro_export]
macro_rules! trace_event {
    ($kind:expr $(, $field:ident : $value:expr)* $(,)?) => {
        if $crate::tracing_enabled() {
            #[allow(clippy::needless_update)]
            $crate::emit($crate::Event {
                kind: $kind,
                $($field: $value,)*
                ..$crate::Event::EMPTY
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_field_expressions_not_evaluated() {
        assert!(!tracing_enabled());
        let mut evaluated = false;
        trace_event!(EventKind::Send, node: { evaluated = true; 1 });
        assert!(
            !evaluated,
            "field expressions must be skipped when disabled"
        );
        assert!(snapshot().is_empty());
    }

    #[test]
    fn guard_records_and_uninstalls() {
        {
            let guard = RecorderGuard::install(8);
            trace_event!(EventKind::Attest, node: 3, seq: 9, aux: 64);
            trace_event!(EventKind::Verify, node: 4, seq: 9, aux: 64);
            let events = guard.snapshot();
            assert_eq!(events.len(), 2);
            assert_eq!(events[0].kind, EventKind::Attest);
            assert_eq!(events[0].node, 3);
            assert_eq!(events[0].peer, NONE);
            assert_eq!(events[1].kind, EventKind::Verify);
        }
        assert!(!tracing_enabled());
        assert!(snapshot().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = RingRecorder::with_capacity(4);
        for seq in 0..10u64 {
            ring.record(Event {
                kind: EventKind::Send,
                seq,
                ..Event::EMPTY
            });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_attributes_drops_to_the_discarded_events_node() {
        let mut ring = RingRecorder::with_capacity(2);
        for node in [7u32, 7, 9, 9, 9] {
            ring.record(Event {
                kind: EventKind::Send,
                node,
                ..Event::EMPTY
            });
        }
        // Ring of 2: the two node-7 events and the first node-9 event were
        // overwritten.
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.dropped_by_node(), vec![(7, 2), (9, 1)]);
    }

    /// `ALL` must cover every variant, in discriminant order. The closure
    /// holds a wildcard-free `match` over the enum: adding a variant makes
    /// it non-exhaustive (a compile error right here), and the arm it then
    /// forces you to write pins the variant's expected position in `ALL`.
    #[test]
    fn all_covers_every_variant() {
        let index_of = |kind: EventKind| -> usize {
            match kind {
                EventKind::Send => 0,
                EventKind::Recv => 1,
                EventKind::Attest => 2,
                EventKind::Verify => 3,
                EventKind::Commitment => 4,
                EventKind::Challenge => 5,
                EventKind::Response => 6,
                EventKind::AuditReplay => 7,
                EventKind::Evidence => 8,
                EventKind::VerdictTransition => 9,
                EventKind::Checkpoint => 10,
                EventKind::Prune => 11,
                EventKind::NetDeliver => 12,
                EventKind::NetDrop => 13,
                EventKind::Membership => 14,
                EventKind::Partition => 15,
                EventKind::Retry => 16,
                EventKind::AuditSample => 17,
                EventKind::ChallengeBatch => 18,
                EventKind::LogAppend => 19,
            }
        };
        for (position, &kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(
                index_of(kind),
                position,
                "ALL out of order at position {position} ({})",
                kind.label()
            );
            assert_eq!(
                kind as usize, position,
                "discriminants must stay contiguous and match the ALL order"
            );
        }
        // Every match arm's index lands inside ALL, so together with the
        // order check above, ALL contains each variant exactly once.
        assert_eq!(EventKind::ALL.len(), index_of(EventKind::LogAppend) + 1);
        let mut labels: Vec<&str> = EventKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EventKind::ALL.len(), "labels must be unique");
    }

    #[test]
    fn verdict_packing_round_trips() {
        let aux = codes::pack_verdict(
            codes::VERDICT_TRUSTED,
            codes::VERDICT_EXPOSED,
            codes::MIS_FORGED_ACCUSATION,
        );
        assert_eq!(
            codes::unpack_verdict(aux),
            (
                codes::VERDICT_TRUSTED,
                codes::VERDICT_EXPOSED,
                codes::MIS_FORGED_ACCUSATION
            )
        );
        assert_eq!(codes::verdict_name(codes::VERDICT_EXPOSED), "exposed");
        assert_eq!(
            codes::misbehavior_name(codes::MIS_FORGED_ACCUSATION),
            "forged-accusation"
        );
    }

    #[test]
    fn install_replaces_previous_recorder() {
        let _guard = RecorderGuard::install(4);
        trace_event!(EventKind::Send, node: 1);
        let old = install_recorder(Box::new(RingRecorder::with_capacity(4)));
        assert_eq!(old.expect("previous recorder").snapshot().len(), 1);
        assert!(snapshot().is_empty());
        trace_event!(EventKind::Recv, node: 2);
        assert_eq!(snapshot().len(), 1);
    }
}
