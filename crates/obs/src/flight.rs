//! The flight recorder: automatic bounded post-mortem dumps.
//!
//! When a named CI gate fails, a verdict comes out unexpected, or an
//! accuracy assertion trips, the bench harness calls [`write_flight_record`]
//! to drop everything a post-mortem needs into one bounded JSON file under
//! `reports/` (which CI uploads as an artifact, so every red run carries
//! its own black box):
//!
//! - the failure `reason` (the failing gate names and their violations),
//! - the **tail** of the assembled event trace (bounded by `max_events` so
//!   dumps stay artifact-sized; the tail is where the failure is),
//! - caller-provided JSON `sections` — typically the metrics-registry
//!   snapshot ([`crate::metrics::MetricsRegistry::render_json`]) and the
//!   log-composition breakdown.
//!
//! See the crate-level "Debugging a verdict" guide for the workflow from a
//! red gate to a Perfetto timeline.

use crate::export::{event_json, json_escape};
use crate::Event;
use std::io;
use std::path::{Path, PathBuf};

/// Writes `flightrec-<tag>.json` under `dir` (creating it) and returns the
/// path. `sections` are `(key, json_value)` pairs embedded verbatim — the
/// values must already be valid JSON. At most `max_events` trailing events
/// are embedded; the dump records how many were truncated.
///
/// # Errors
///
/// Propagates filesystem errors from creating the directory or writing the
/// file.
pub fn write_flight_record(
    dir: &Path,
    tag: &str,
    reason: &str,
    events: &[Event],
    dropped_by_ring: u64,
    max_events: usize,
    sections: &[(&str, String)],
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("flightrec-{tag}.json"));

    let tail_start = events.len().saturating_sub(max_events);
    let tail: Vec<String> = events[tail_start..].iter().map(event_json).collect();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"tag\": \"{}\",\n", json_escape(tag)));
    out.push_str(&format!("  \"reason\": \"{}\",\n", json_escape(reason)));
    out.push_str(&format!("  \"events_recorded\": {},\n", events.len()));
    out.push_str(&format!("  \"events_truncated\": {tail_start},\n"));
    out.push_str(&format!(
        "  \"events_dropped_by_ring\": {dropped_by_ring},\n"
    ));
    for (key, value) in sections {
        out.push_str(&format!("  \"{}\": {value},\n", json_escape(key)));
    }
    out.push_str("  \"events\": [\n    ");
    out.push_str(&tail.join(",\n    "));
    out.push_str("\n  ]\n}\n");

    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    #[test]
    fn dump_is_bounded_and_names_the_reason() {
        let dir = std::env::temp_dir().join("tnic-obs-flight-test");
        let events: Vec<Event> = (0..100)
            .map(|seq| Event {
                kind: EventKind::Send,
                seq,
                ..Event::EMPTY
            })
            .collect();
        let path = write_flight_record(
            &dir,
            "unit",
            "gate verdicts failed: 1 violation",
            &events,
            7,
            16,
            &[("metrics", "{\"scope\":{}}".to_string())],
        )
        .expect("dump written");
        let body = std::fs::read_to_string(&path).expect("readable");
        assert!(body.contains("\"reason\": \"gate verdicts failed: 1 violation\""));
        assert!(body.contains("\"events_recorded\": 100"));
        assert!(body.contains("\"events_truncated\": 84"));
        assert!(body.contains("\"events_dropped_by_ring\": 7"));
        assert!(body.contains("\"metrics\": {\"scope\":{}}"));
        // Only the 16-event tail is embedded.
        assert_eq!(body.matches("\"kind\":\"send\"").count(), 16);
        assert!(body.contains("\"seq\":99"), "tail keeps the latest events");
        assert!(!body.contains("\"seq\":83"), "head is truncated");
        let _ = std::fs::remove_file(&path);
    }
}
