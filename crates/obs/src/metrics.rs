//! A metrics registry unifying the `tnic_sim::stats` primitives under
//! labeled scopes.
//!
//! The simulator crates already produce good primitives — monotonically
//! increasing counters, [`Histogram`] percentiles, [`ThroughputMeter`] rates
//! — but each harness wires them up ad hoc. The registry gives them a single
//! addressable home: a **scope** per (application, fault, configuration)
//! triple (e.g. `peerreview/exec-tampering/piggyback(w=2)`), each holding
//! named counters, per-node gauges and histograms. Report generators walk
//! the registry instead of knowing every harness struct.

use std::collections::BTreeMap;
use tnic_sim::stats::Histogram;

/// Metrics for one labeled scope.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Scope {
    /// Adds `by` to the named counter (creating it at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of a counter (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to an absolute value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Sets a per-node gauge (`name[node]`).
    pub fn set_node_gauge(&mut self, name: &str, node: u32, value: f64) {
        self.gauges.insert(format!("{name}[{node}]"), value);
    }

    /// Current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records a microsecond sample into the named histogram.
    pub fn record_us(&mut self, name: &str, value_us: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record_us(value_us);
    }

    /// Merges an existing histogram (e.g. from `AccountabilityStats`) into
    /// the named one.
    pub fn merge_histogram(&mut self, name: &str, histogram: &Histogram) {
        let slot = self.histograms.entry(name.to_string()).or_default();
        for &sample in histogram.samples_us() {
            slot.record_us(sample);
        }
    }

    /// The named histogram, if any samples were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counter iterator in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauge iterator in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histogram iterator in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// A collection of labeled scopes.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    scopes: BTreeMap<String, Scope>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The scope for `label`, created on first use. Conventionally the
    /// label is `app/fault/mode`, e.g. `peerreview/equivocation/dedicated`.
    pub fn scope(&mut self, label: &str) -> &mut Scope {
        self.scopes.entry(label.to_string()).or_default()
    }

    /// Read-only lookup.
    #[must_use]
    pub fn get(&self, label: &str) -> Option<&Scope> {
        self.scopes.get(label)
    }

    /// Scope iterator in label order.
    pub fn scopes(&self) -> impl Iterator<Item = (&str, &Scope)> {
        self.scopes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of scopes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scopes.len()
    }

    /// Returns `true` if no scope was created.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    /// Renders every scope as a markdown fragment (counters, gauges and
    /// histogram percentiles), used by the bench report generator.
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        for (label, scope) in self.scopes() {
            out.push_str(&format!("### Scope `{label}`\n\n"));
            if scope.counters.is_empty() && scope.gauges.is_empty() && scope.histograms.is_empty() {
                out.push_str("(empty)\n\n");
                continue;
            }
            if !scope.counters.is_empty() || !scope.gauges.is_empty() {
                out.push_str("| metric | value |\n|---|---:|\n");
                for (name, value) in scope.counters() {
                    out.push_str(&format!("| {name} | {value} |\n"));
                }
                for (name, value) in scope.gauges() {
                    out.push_str(&format!("| {name} | {value:.3} |\n"));
                }
                out.push('\n');
            }
            if !scope.histograms.is_empty() {
                out.push_str("| histogram | samples | mean µs | p50 µs | p99 µs | max µs |\n");
                out.push_str("|---|---:|---:|---:|---:|---:|\n");
                for (name, h) in scope.histograms() {
                    out.push_str(&format!(
                        "| {name} | {} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
                        h.len(),
                        h.mean_us(),
                        h.median_us(),
                        h.percentile_us(0.99),
                        h.max_us()
                    ));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Renders the whole registry as one JSON object — `{scope: {counters,
    /// gauges, histograms}}` with histogram summaries (count/mean/p50/p99/
    /// max in µs). Hand-rolled (no serde); used by `BENCH_report.json` and
    /// the flight recorder.
    #[must_use]
    pub fn render_json(&self) -> String {
        use crate::export::json_escape;
        let mut scopes = Vec::new();
        for (label, scope) in self.scopes() {
            let counters: Vec<String> = scope
                .counters()
                .map(|(name, value)| format!("\"{}\":{value}", json_escape(name)))
                .collect();
            let gauges: Vec<String> = scope
                .gauges()
                .map(|(name, value)| {
                    let value = if value.is_finite() { value } else { -1.0 };
                    format!("\"{}\":{value}", json_escape(name))
                })
                .collect();
            let histograms: Vec<String> = scope
                .histograms()
                .map(|(name, h)| {
                    format!(
                        "\"{}\":{{\"count\":{},\"mean_us\":{:.2},\"p50_us\":{:.2},\
                         \"p99_us\":{:.2},\"max_us\":{:.2}}}",
                        json_escape(name),
                        h.len(),
                        h.mean_us(),
                        h.median_us(),
                        h.percentile_us(0.99),
                        h.max_us()
                    )
                })
                .collect();
            scopes.push(format!(
                "\"{}\":{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
                json_escape(label),
                counters.join(","),
                gauges.join(","),
                histograms.join(",")
            ));
        }
        format!("{{{}}}", scopes.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let mut registry = MetricsRegistry::new();
        let scope = registry.scope("peerreview/equivocation/dedicated");
        scope.inc("control_messages", 10);
        scope.inc("control_messages", 5);
        scope.set_node_gauge("retained_entries", 0, 42.0);
        scope.record_us("audit_latency", 100.0);
        scope.record_us("audit_latency", 300.0);
        assert_eq!(scope.counter("control_messages"), 15);
        assert_eq!(scope.counter("missing"), 0);
        assert_eq!(scope.gauge("retained_entries[0]"), Some(42.0));
        assert_eq!(
            scope.histogram("audit_latency").map(Histogram::len),
            Some(2)
        );
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn merge_histogram_copies_samples() {
        let mut source = Histogram::new();
        source.record_us(1.0);
        source.record_us(9.0);
        let mut registry = MetricsRegistry::new();
        registry.scope("s").merge_histogram("lat", &source);
        registry.scope("s").record_us("lat", 5.0);
        assert_eq!(
            registry.get("s").unwrap().histogram("lat").unwrap().len(),
            3
        );
    }

    #[test]
    fn json_rendering_is_balanced_and_complete() {
        let mut registry = MetricsRegistry::new();
        let scope = registry.scope("peerreview/x/y");
        scope.inc("events_dropped", 3);
        scope.set_gauge("ratio", 1.5);
        scope.record_us("lat", 10.0);
        let json = registry.render_json();
        assert!(json.contains("\"peerreview/x/y\""));
        assert!(json.contains("\"events_dropped\":3"));
        assert!(json.contains("\"ratio\":1.5"));
        assert!(json.contains("\"p99_us\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn markdown_rendering_mentions_scopes_and_percentiles() {
        let mut registry = MetricsRegistry::new();
        let scope = registry.scope("bft/crash/piggyback");
        scope.inc("messages", 7);
        scope.record_us("lat", 50.0);
        let md = registry.render_markdown();
        assert!(md.contains("### Scope `bft/crash/piggyback`"));
        assert!(md.contains("| messages | 7 |"));
        assert!(md.contains("p99"));
    }
}
