//! Causal protocol timelines: explain a verdict from the recorded events.
//!
//! Exposure latency is easy to *measure* (rounds until every witness convicts)
//! but the interesting question is where the time went: how long did the
//! commitment sit before the witness challenged, how long did the audited
//! node take to respond, how long was the replay, and did the verdict come
//! from a local replay or relayed evidence? [`explain_verdict`] reconstructs
//! that chain for a (witness, node) pair from a recorder snapshot.

use crate::{codes, Event, EventKind};

/// One phase of the path to a verdict, with its virtual-time span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase label (`commitment→challenge`, `challenge→response`, ...).
    pub phase: &'static str,
    /// Virtual time the phase started, microseconds.
    pub from_us: u64,
    /// Virtual time the phase ended, microseconds.
    pub to_us: u64,
}

impl PhaseSpan {
    /// Phase duration in microseconds.
    #[must_use]
    pub fn duration_us(&self) -> u64 {
        self.to_us.saturating_sub(self.from_us)
    }
}

/// The reconstructed causal chain behind one verdict transition.
#[derive(Debug, Clone)]
pub struct VerdictChain {
    /// The judging witness.
    pub witness: u32,
    /// The judged node.
    pub node: u32,
    /// Verdict code after the transition (see [`codes`]).
    pub verdict: u64,
    /// Misbehavior code attached to the transition.
    pub misbehavior: u64,
    /// Audit round the verdict was stamped in.
    pub round: u64,
    /// The causal prefix, oldest first, ending in the verdict transition.
    pub chain: Vec<Event>,
    /// Durations between consecutive chain events.
    pub phases: Vec<PhaseSpan>,
}

impl VerdictChain {
    /// Total virtual time from the first chain event to the verdict.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        match (self.chain.first(), self.chain.last()) {
            (Some(first), Some(last)) => last.at_us.saturating_sub(first.at_us),
            _ => 0,
        }
    }

    /// `true` if the verdict exposed the node.
    #[must_use]
    pub fn is_exposure(&self) -> bool {
        self.verdict == codes::VERDICT_EXPOSED
    }
}

/// All verdict transitions in the snapshot, in recording order.
#[must_use]
pub fn verdict_transitions(events: &[Event]) -> Vec<Event> {
    events
        .iter()
        .filter(|e| e.kind == EventKind::VerdictTransition)
        .copied()
        .collect()
}

/// The canonical label of the protocol phase between two causally adjacent
/// step kinds (`"→"` for pairs that are not a named phase). Shared by the
/// single-verdict chains here and the whole-run pair spans in
/// [`crate::assemble`].
#[must_use]
pub fn phase_label(from: EventKind, to: EventKind) -> &'static str {
    match (from, to) {
        (EventKind::Commitment, EventKind::Challenge) => "commitment→challenge",
        (EventKind::Commitment, EventKind::Evidence) => "commitment→evidence",
        (EventKind::Challenge, EventKind::Response) => "challenge→response",
        (EventKind::Response, EventKind::AuditReplay) => "response→replay",
        (EventKind::AuditReplay, EventKind::VerdictTransition) => "replay→verdict",
        (EventKind::Evidence, EventKind::VerdictTransition) => "evidence→verdict",
        (EventKind::Commitment, EventKind::VerdictTransition) => "commitment→verdict",
        (EventKind::Challenge, EventKind::VerdictTransition) => "challenge→verdict",
        (EventKind::Response, EventKind::VerdictTransition) => "response→verdict",
        (EventKind::AuditReplay, EventKind::Evidence) => "replay→evidence",
        (EventKind::Challenge, EventKind::Evidence) => "challenge→evidence",
        (EventKind::Response, EventKind::Evidence) => "response→evidence",
        _ => "→",
    }
}

/// Reconstructs the causal chain behind the **last** verdict transition the
/// witness recorded for `node`. Returns `None` if the snapshot holds no such
/// transition.
///
/// The chain is assembled from the protocol events the witness recorded for
/// the pair, taking for each protocol step the latest occurrence at or
/// before the verdict: `commitment → challenge → response → replay →
/// evidence → verdict`. Steps that did not occur (e.g. no evidence for a
/// locally replayed conviction) are simply absent, and the phase spans are
/// computed between the steps that remain.
#[must_use]
pub fn explain_verdict(events: &[Event], witness: u32, node: u32) -> Option<VerdictChain> {
    let verdict = events
        .iter()
        .rfind(|e| e.kind == EventKind::VerdictTransition && e.node == witness && e.peer == node)?;
    let (_, new_verdict, misbehavior) = codes::unpack_verdict(verdict.aux);

    const STEPS: [EventKind; 5] = [
        EventKind::Commitment,
        EventKind::Challenge,
        EventKind::Response,
        EventKind::AuditReplay,
        EventKind::Evidence,
    ];
    let mut chain: Vec<Event> = Vec::new();
    for step in STEPS {
        let hit = events.iter().rfind(|e| {
            e.kind == step
                && e.node == witness
                && (e.peer == node || step == EventKind::Evidence)
                && e.at_us <= verdict.at_us
        });
        if let Some(event) = hit {
            chain.push(*event);
        }
    }
    chain.sort_by_key(|e| e.at_us);
    chain.push(*verdict);

    let phases = chain
        .windows(2)
        .map(|pair| PhaseSpan {
            phase: phase_label(pair[0].kind, pair[1].kind),
            from_us: pair[0].at_us,
            to_us: pair[1].at_us,
        })
        .collect();

    Some(VerdictChain {
        witness,
        node,
        verdict: new_verdict,
        misbehavior,
        round: verdict.round,
        chain,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: EventKind, at_us: u64, node: u32, peer: u32, aux: u64) -> Event {
        Event {
            kind,
            at_us,
            node,
            peer,
            aux,
            ..Event::EMPTY
        }
    }

    #[test]
    fn explains_a_full_audit_chain() {
        let verdict_aux = codes::pack_verdict(
            codes::VERDICT_TRUSTED,
            codes::VERDICT_EXPOSED,
            codes::MIS_EXEC_DIVERGENCE,
        );
        let events = vec![
            event(EventKind::Commitment, 10, 2, 0, 0),
            event(EventKind::Challenge, 40, 2, 0, 0),
            event(EventKind::Response, 70, 2, 0, 3),
            event(EventKind::AuditReplay, 90, 2, 0, codes::MIS_EXEC_DIVERGENCE),
            event(EventKind::VerdictTransition, 95, 2, 0, verdict_aux),
            // Noise for a different pair must not leak in.
            event(EventKind::Challenge, 50, 3, 1, 0),
        ];
        let chain = explain_verdict(&events, 2, 0).expect("chain");
        assert!(chain.is_exposure());
        assert_eq!(chain.misbehavior, codes::MIS_EXEC_DIVERGENCE);
        let kinds: Vec<EventKind> = chain.chain.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Commitment,
                EventKind::Challenge,
                EventKind::Response,
                EventKind::AuditReplay,
                EventKind::VerdictTransition
            ]
        );
        assert_eq!(chain.total_us(), 85);
        let labels: Vec<&str> = chain.phases.iter().map(|p| p.phase).collect();
        assert_eq!(
            labels,
            vec![
                "commitment→challenge",
                "challenge→response",
                "response→replay",
                "replay→verdict"
            ]
        );
        assert_eq!(chain.phases[1].duration_us(), 30);
    }

    #[test]
    fn evidence_only_chain() {
        let verdict_aux = codes::pack_verdict(
            codes::VERDICT_TRUSTED,
            codes::VERDICT_EXPOSED,
            codes::MIS_CONFLICTING_COMMITMENTS,
        );
        let events = vec![
            event(EventKind::Commitment, 5, 4, 1, 0),
            event(EventKind::Evidence, 20, 4, 2, 0),
            event(EventKind::VerdictTransition, 21, 4, 1, verdict_aux),
        ];
        let chain = explain_verdict(&events, 4, 1).expect("chain");
        let kinds: Vec<EventKind> = chain.chain.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Commitment,
                EventKind::Evidence,
                EventKind::VerdictTransition
            ]
        );
        assert_eq!(chain.phases.last().unwrap().phase, "evidence→verdict");
    }

    #[test]
    fn missing_pair_returns_none() {
        assert!(explain_verdict(&[], 0, 1).is_none());
    }
}
