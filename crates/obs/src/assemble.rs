//! Cluster-wide causal trace assembly.
//!
//! Each node's protocol history is recorded as a flat stream of [`Event`]s
//! (in the deterministic simulator, one ring holds the whole cluster; on a
//! real deployment, per-node rings are concatenated). [`TraceAssembler`]
//! merges those per-node histories into one causally ordered cluster
//! timeline:
//!
//! - **Per-node sequence**: events of the same node keep their recorded
//!   order (program order on that node's track).
//! - **Message edges**: a [`EventKind::Send`] on the sender and the
//!   [`EventKind::Recv`] of the same attested message on the receiver are
//!   joined on the `(sender, receiver, attestation counter)` key both
//!   already carry — the compact trace id that rides the existing attested
//!   header instead of a new wire field (see [`trace_id`]).
//!
//! The merge is a real topological sort over those happens-before edges,
//! not a timestamp sort: even with skewed or equal timestamps, a delivery
//! can never be ordered before its send. This generalizes
//! [`crate::timeline::explain_verdict`] — which reconstructs one verdict's
//! chain — to whole-run, cross-node timelines, and feeds the exporters in
//! [`crate::export`].

use crate::timeline::{phase_label, PhaseSpan};
use crate::{Event, EventKind, NONE};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Packs the cross-node trace identity of one attested message — the
/// `(origin node, attestation counter)` pair its wire header already
/// carries — into a single `u64` for exporters (Chrome trace flow ids).
///
/// The counter is kept modulo 2⁴⁰ (a simulated run records far fewer sends)
/// so the origin stays in the high bits and ids from different origins
/// cannot collide.
#[must_use]
pub fn trace_id(origin: u32, counter: u64) -> u64 {
    (u64::from(origin) << 40) | (counter & 0xFF_FFFF_FFFF)
}

/// One matched cross-node message edge: the send and its delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageEdge {
    /// Sending node.
    pub from: u32,
    /// Receiving node.
    pub to: u32,
    /// Attestation counter of the message (the wire-level identity).
    pub counter: u64,
    /// Index of the [`EventKind::Send`] event in [`TraceAssembler::events`].
    pub send_idx: usize,
    /// Index of the matching [`EventKind::Recv`] event.
    pub recv_idx: usize,
}

impl MessageEdge {
    /// The packed flow id of this edge (see [`trace_id`]).
    #[must_use]
    pub fn trace_id(&self) -> u64 {
        trace_id(self.from, self.counter)
    }
}

/// A protocol-phase span between two causally adjacent steps of one
/// (witness, audited node) pair — the per-pair generalization of
/// [`crate::timeline::VerdictChain::phases`] to every audit interaction in
/// a run, batched or not (a challenge batch fans out into one span per
/// audited pair, because the per-pair protocol events are what the spans
/// are built from).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairSpan {
    /// The witness driving the interaction.
    pub witness: u32,
    /// The audited node.
    pub node: u32,
    /// Audit round of the span's opening event.
    pub round: u64,
    /// The phase (see [`crate::timeline::phase_label`]).
    pub span: PhaseSpan,
}

/// Merges recorded per-node event streams into a causally ordered
/// cluster-wide timeline. Construction copies the snapshot; all methods are
/// cold-path (allocation is fine here — the hot path ended when the
/// snapshot was taken).
#[derive(Debug, Clone)]
pub struct TraceAssembler {
    events: Vec<Event>,
}

impl TraceAssembler {
    /// Builds an assembler over a recorded snapshot. The input order is
    /// taken as the per-node program order (which ring recorders provide);
    /// cross-node order is *not* trusted and is re-derived from the message
    /// edges.
    #[must_use]
    pub fn new(events: impl Into<Vec<Event>>) -> Self {
        TraceAssembler {
            events: events.into(),
        }
    }

    /// The events in their recorded order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Distinct node ids appearing as an event's primary actor, ascending
    /// (the tracks of the assembled timeline).
    #[must_use]
    pub fn nodes(&self) -> Vec<u32> {
        let set: BTreeSet<u32> = self
            .events
            .iter()
            .map(|e| e.node)
            .filter(|&n| n != NONE)
            .collect();
        set.into_iter().collect()
    }

    /// Matches every delivery to its send on the `(sender, receiver,
    /// counter)` trace identity. Rejected deliveries (`Recv` with
    /// `aux != 0`) still edge to their send — a rejected message was still
    /// caused by it.
    #[must_use]
    pub fn message_edges(&self) -> Vec<MessageEdge> {
        let mut sends: BTreeMap<(u32, u32, u64), usize> = BTreeMap::new();
        for (idx, event) in self.events.iter().enumerate() {
            if event.kind == EventKind::Send {
                // Multicasts record one Send per receiver with a shared
                // counter; the key includes the receiver, so each edge is
                // distinct. Keep the first (earliest) send for duplicates.
                sends
                    .entry((event.node, event.peer, event.seq))
                    .or_insert(idx);
            }
        }
        let mut edges = Vec::new();
        for (idx, event) in self.events.iter().enumerate() {
            if event.kind != EventKind::Recv {
                continue;
            }
            if let Some(&send_idx) = sends.get(&(event.peer, event.node, event.seq)) {
                edges.push(MessageEdge {
                    from: event.peer,
                    to: event.node,
                    counter: event.seq,
                    send_idx,
                    recv_idx: idx,
                });
            }
        }
        edges
    }

    /// The causally ordered cluster timeline: a topological order of the
    /// happens-before graph (per-node program order plus send→recv edges),
    /// tie-broken by `(at_us, recorded index)` so concurrent events stay in
    /// a stable, time-plausible order. Every delivery appears after its
    /// send even when timestamps are skewed or equal.
    #[must_use]
    pub fn ordered(&self) -> Vec<Event> {
        let n = self.events.len();
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut in_degree: Vec<usize> = vec![0; n];
        let mut add_edge = |from: usize, to: usize, in_degree: &mut Vec<usize>| {
            successors[from].push(to);
            in_degree[to] += 1;
        };

        // Per-node program order: chain each node's events as recorded.
        let mut last_of_node: BTreeMap<u32, usize> = BTreeMap::new();
        for (idx, event) in self.events.iter().enumerate() {
            if event.node == NONE {
                continue;
            }
            if let Some(&prev) = last_of_node.get(&event.node) {
                add_edge(prev, idx, &mut in_degree);
            }
            last_of_node.insert(event.node, idx);
        }
        // Cross-node message edges.
        for edge in self.message_edges() {
            add_edge(edge.send_idx, edge.recv_idx, &mut in_degree);
        }

        // Kahn's algorithm with a min-heap on (at_us, index): deterministic,
        // and as close to timestamp order as causality allows.
        let mut ready: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = (0..n)
            .filter(|&i| in_degree[i] == 0)
            .map(|i| std::cmp::Reverse((self.events[i].at_us, i)))
            .collect();
        let mut emitted = vec![false; n];
        let mut out = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse((_, idx))) = ready.pop() {
            emitted[idx] = true;
            out.push(self.events[idx]);
            for &next in &successors[idx] {
                in_degree[next] -= 1;
                if in_degree[next] == 0 {
                    ready.push(std::cmp::Reverse((self.events[next].at_us, next)));
                }
            }
        }
        // A cycle would mean an inconsistent recording (it cannot arise
        // from real send/recv edges); append the remainder in recorded
        // order rather than losing it.
        for (idx, was_emitted) in emitted.iter().enumerate() {
            if !was_emitted {
                out.push(self.events[idx]);
            }
        }
        out
    }

    /// Per-(witness, node) protocol-phase spans across the whole run: for
    /// every audited pair, consecutive steps of the commitment → challenge
    /// → response → replay → verdict ladder become one span each, labeled
    /// with [`phase_label`]. Batched challenge/response envelopes fan out
    /// here: the per-pair `Challenge`/`Response` events they carry produce
    /// one span per pair, not one per wire message.
    #[must_use]
    pub fn pair_spans(&self) -> Vec<PairSpan> {
        const LADDER: [EventKind; 5] = [
            EventKind::Commitment,
            EventKind::Challenge,
            EventKind::Response,
            EventKind::AuditReplay,
            EventKind::VerdictTransition,
        ];
        // Group the ladder events per (witness, node) pair in causal order.
        let mut per_pair: BTreeMap<(u32, u32), Vec<Event>> = BTreeMap::new();
        for event in self.ordered() {
            if LADDER.contains(&event.kind) && event.node != NONE && event.peer != NONE {
                per_pair
                    .entry((event.node, event.peer))
                    .or_default()
                    .push(event);
            }
        }
        let mut spans = Vec::new();
        for ((witness, node), events) in per_pair {
            for pair in events.windows(2) {
                // Only adjacent ladder steps form a phase (e.g. commitment
                // →challenge, challenge→response); unrelated adjacency
                // (verdict→commitment of the next round) is skipped.
                let from_pos = LADDER.iter().position(|&k| k == pair[0].kind);
                let to_pos = LADDER.iter().position(|&k| k == pair[1].kind);
                let (Some(from_pos), Some(to_pos)) = (from_pos, to_pos) else {
                    continue;
                };
                if to_pos <= from_pos {
                    continue;
                }
                spans.push(PairSpan {
                    witness,
                    node,
                    round: pair[0].round,
                    span: PhaseSpan {
                        phase: phase_label(pair[0].kind, pair[1].kind),
                        from_us: pair[0].at_us,
                        to_us: pair[1].at_us,
                    },
                });
            }
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: EventKind, at_us: u64, node: u32, peer: u32, seq: u64) -> Event {
        Event {
            kind,
            at_us,
            node,
            peer,
            seq,
            ..Event::EMPTY
        }
    }

    #[test]
    fn trace_id_separates_origins() {
        assert_ne!(trace_id(1, 7), trace_id(2, 7));
        assert_ne!(trace_id(1, 7), trace_id(1, 8));
        assert_eq!(trace_id(3, 9), trace_id(3, 9));
    }

    #[test]
    fn recv_is_ordered_after_its_send_despite_clock_skew() {
        // Node 1's clock runs ahead: its delivery is stamped *earlier* than
        // node 0's send. A timestamp sort would invert causality; the
        // assembler must not.
        let events = vec![
            event(EventKind::Recv, 5, 1, 0, 42),
            event(EventKind::Send, 9, 0, 1, 42),
        ];
        let ordered = TraceAssembler::new(events).ordered();
        let send_pos = ordered.iter().position(|e| e.kind == EventKind::Send);
        let recv_pos = ordered.iter().position(|e| e.kind == EventKind::Recv);
        assert!(send_pos < recv_pos, "send must precede its delivery");
    }

    #[test]
    fn per_node_program_order_is_preserved() {
        let events = vec![
            event(EventKind::Attest, 10, 3, NONE, 1),
            event(EventKind::Attest, 10, 3, NONE, 2),
            event(EventKind::Attest, 10, 3, NONE, 3),
        ];
        let ordered = TraceAssembler::new(events.clone()).ordered();
        assert_eq!(ordered, events);
    }

    #[test]
    fn edges_match_on_the_full_identity() {
        let events = vec![
            event(EventKind::Send, 1, 0, 1, 7),
            event(EventKind::Send, 2, 0, 2, 7), // multicast sibling
            event(EventKind::Recv, 3, 1, 0, 7),
            event(EventKind::Recv, 4, 2, 0, 7),
            event(EventKind::Recv, 5, 1, 0, 99), // orphan: no send recorded
        ];
        let edges = TraceAssembler::new(events).message_edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().any(|e| e.to == 1 && e.send_idx == 0));
        assert!(edges.iter().any(|e| e.to == 2 && e.send_idx == 1));
    }
}
