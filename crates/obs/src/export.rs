//! Trace exporters: Chrome trace-event JSON (Perfetto-viewable) and
//! compact JSONL.
//!
//! Both exporters are hand-rolled (no serde dependency) over the fixed
//! [`Event`] struct, so the JSON vocabulary is exactly the recorded fields
//! plus the decoded labels from [`crate::codes`].
//!
//! The Chrome form follows the trace-event format Perfetto ingests:
//! one thread (`tid`) per node under a single `pid`, an instant (`"ph":
//! "i"`) per recorded event, flow arrows (`"ph": "s"`/`"f"`) along every
//! matched send→recv edge (id = [`crate::assemble::trace_id`]), and one
//! complete span (`"ph": "X"`) per protocol phase of every audited pair —
//! load the file at <https://ui.perfetto.dev> and follow the arrows from a
//! tampered send to the exposing verdict.

use crate::assemble::TraceAssembler;
use crate::{codes, Event, EventKind};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal (quotes not
/// included).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The kind-specific human-readable detail of an event (verdict names,
/// membership phases, drop reasons, log classes), or `None` when `aux` is
/// a plain number.
fn aux_detail(event: &Event) -> Option<String> {
    match event.kind {
        EventKind::VerdictTransition => {
            let (old, new, mis) = codes::unpack_verdict(event.aux);
            Some(format!(
                "{}→{} ({})",
                codes::verdict_name(old),
                codes::verdict_name(new),
                codes::misbehavior_name(mis)
            ))
        }
        EventKind::Membership => Some(codes::member_phase_name(event.aux).to_string()),
        EventKind::NetDrop => Some(codes::drop_reason_name(event.aux).to_string()),
        EventKind::LogAppend => Some(codes::log_class_name(event.aux).to_string()),
        EventKind::Evidence => Some(
            if event.aux == 0 {
                "verified"
            } else {
                "rejected"
            }
            .to_string(),
        ),
        _ => None,
    }
}

/// One event as a JSON object (shared by the JSONL exporter and the flight
/// recorder).
#[must_use]
pub fn event_json(event: &Event) -> String {
    let mut out = format!(
        "{{\"kind\":\"{}\",\"at_us\":{},\"node\":{},\"peer\":{},\"seq\":{},\"round\":{},\"aux\":{}",
        event.kind.label(),
        event.at_us,
        i64::from(event.node as i32), // NONE renders as -1, not 4294967295
        i64::from(event.peer as i32),
        event.seq,
        event.round,
        event.aux
    );
    if let Some(detail) = aux_detail(event) {
        let _ = write!(out, ",\"detail\":\"{}\"", json_escape(&detail));
    }
    out.push('}');
    out
}

/// Compact JSONL export: one JSON object per line, in the given order
/// (pass [`TraceAssembler::ordered`] output for a causal file).
#[must_use]
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event_json(event));
        out.push('\n');
    }
    out
}

/// Chrome trace-event JSON of an assembled cluster timeline: one track per
/// node, instants per event, flow arrows per message edge, and complete
/// spans per audited-pair protocol phase. Returns a self-contained JSON
/// document (`{"traceEvents": [...]}`).
#[must_use]
pub fn chrome_trace(assembler: &TraceAssembler) -> String {
    let mut entries: Vec<String> = Vec::new();

    // Track naming: one process for the cluster, one thread per node.
    entries.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"tnic-cluster\"}}"
            .to_string(),
    );
    for node in assembler.nodes() {
        entries.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{node},\
             \"args\":{{\"name\":\"node {node}\"}}}}"
        ));
    }

    // Instants: every recorded event on its node's track.
    for event in assembler.ordered() {
        let tid = if event.node == crate::NONE {
            0
        } else {
            event.node
        };
        let mut args = format!(
            "\"peer\":{},\"seq\":{},\"round\":{},\"aux\":{}",
            i64::from(event.peer as i32),
            event.seq,
            event.round,
            event.aux
        );
        if let Some(detail) = aux_detail(&event) {
            let _ = write!(args, ",\"detail\":\"{}\"", json_escape(&detail));
        }
        entries.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{tid},\
             \"args\":{{{args}}}}}",
            event.kind.label(),
            event.at_us
        ));
    }

    // Flow arrows: one s/f pair per matched cross-node message edge. The
    // flow id is the packed (origin, counter) trace id the wire already
    // carries.
    let events = assembler.events();
    for edge in assembler.message_edges() {
        let send = &events[edge.send_idx];
        let recv = &events[edge.recv_idx];
        let id = edge.trace_id();
        entries.push(format!(
            "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":{id},\"ts\":{},\
             \"pid\":0,\"tid\":{}}}",
            send.at_us, edge.from
        ));
        entries.push(format!(
            "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"ts\":{},\
             \"pid\":0,\"tid\":{}}}",
            recv.at_us.max(send.at_us),
            edge.to
        ));
    }

    // Protocol-phase spans on the witness's track.
    for span in assembler.pair_spans() {
        entries.push(format!(
            "{{\"name\":\"{} (node {})\",\"cat\":\"audit\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":0,\"tid\":{},\"args\":{{\"node\":{},\"round\":{}}}}}",
            json_escape(span.span.phase),
            span.node,
            span.span.from_us,
            span.span.duration_us().max(1),
            span.witness,
            span.node,
            span.round
        ));
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NONE;

    fn event(kind: EventKind, at_us: u64, node: u32, peer: u32, seq: u64) -> Event {
        Event {
            kind,
            at_us,
            node,
            peer,
            seq,
            ..Event::EMPTY
        }
    }

    #[test]
    fn jsonl_is_one_object_per_line_with_decoded_detail() {
        let aux = codes::pack_verdict(
            codes::VERDICT_TRUSTED,
            codes::VERDICT_EXPOSED,
            codes::MIS_EXEC_DIVERGENCE,
        );
        let events = vec![
            event(EventKind::Send, 1, 0, 1, 5),
            Event {
                kind: EventKind::VerdictTransition,
                at_us: 9,
                node: 2,
                peer: 0,
                aux,
                ..Event::EMPTY
            },
        ];
        let out = jsonl(&events);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"send\""));
        assert!(lines[1].contains("execution-divergence"));
    }

    #[test]
    fn chrome_trace_has_tracks_flows_and_spans() {
        let events = vec![
            event(EventKind::Send, 1, 0, 2, 5),
            event(EventKind::Recv, 3, 2, 0, 5),
            event(EventKind::Challenge, 10, 2, 0, 7),
            event(EventKind::Response, 20, 2, 0, 7),
        ];
        let out = chrome_trace(&TraceAssembler::new(events));
        assert!(out.contains("\"name\":\"thread_name\""));
        assert!(out.contains("\"name\":\"node 2\""));
        assert!(out.contains("\"ph\":\"s\""), "flow start for the edge");
        assert!(out.contains("\"ph\":\"f\""), "flow finish for the edge");
        assert!(
            out.contains("challenge→response"),
            "per-pair phase span present"
        );
        // Well-formedness smoke check: braces balance.
        let opens = out.matches('{').count();
        let closes = out.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn none_ids_render_as_minus_one() {
        let out = event_json(&event(EventKind::Attest, 1, 3, NONE, 1));
        assert!(out.contains("\"peer\":-1"));
    }
}
