//! Offline stand-in for the real `serde_derive` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this no-op implementation of the `Serialize`/`Deserialize` derive macros.
//! The derives expand to nothing: the repository only uses the derive
//! annotations for forward compatibility and never calls a serialisation
//! framework, so inert derives are sufficient. Swapping in the real serde is
//! a manifest-only change.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: accepts any item and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: accepts any item and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
