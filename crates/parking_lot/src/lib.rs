//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of the `parking_lot` API the workspace uses — [`Mutex`] and
//! [`RwLock`] with non-poisoning lock methods — backed by the `std::sync`
//! primitives. Poisoned locks are recovered transparently, matching
//! `parking_lot`'s semantics of never poisoning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
