//! Pluggable accountability layer for the TNIC programming API.
//!
//! The paper's fourth application case study (§6, PeerReview) retrofits
//! *accountability* — tamper-evident logs, witness audits and verifiable
//! evidence — onto systems built over the attest/verify substrate. Rather
//! than weaving log maintenance into every application, the [`Cluster`]
//! exposes a hook point: an [`AccountabilityLayer`] attached to the cluster
//! observes every `auth_send`/`multicast` on the sender side and every
//! verified delivery on the receiver side, in the same way the
//! [`transform`](crate::transform) wrappers observe application state.
//! The hooks fire for *all* cluster traffic — application dataflow,
//! replication protocol messages, audit control traffic — so the layer's
//! tamper-evident record covers whatever protocol happens to run on top.
//!
//! The layer is *almost* passive: it cannot veto traffic (that is the
//! attestation kernel's job), but it may **piggyback** control data on
//! outbound messages through [`AccountabilityLayer::wrap_outbound`] — the
//! cluster offers every unicast `auth_send` payload to the layer before
//! attesting it, and the layer may return a wrapped payload carrying e.g. a
//! pending log commitment. Group traffic is offered once per multicast
//! through [`AccountabilityLayer::wrap_multicast`]: the wrapped payload is
//! attested once and the identical bytes reach every receiver, preserving
//! the single-attestation property that makes multicast equivocation-free.
//! This mirrors PeerReview's design, where the commitment protocol
//! piggybacks on the existing message flow and all enforcement happens
//! asynchronously in the audit protocol.
//!
//! # Engine / driver split
//!
//! The concrete accountability machinery lives in the `tnic-peerreview`
//! crate, split in two:
//!
//! * the **engine** (`tnic_peerreview::engine`) — an application-agnostic
//!   middleware: the `CommitmentLayer` implementing this module's trait,
//!   witness audit/challenge/evidence handling, verdict tracking, the
//!   piggyback ride queue, and the cosigned checkpoint/garbage-collection
//!   protocol (`tnic_peerreview::checkpoint`) that keeps the tamper-evident
//!   logs bounded for long-lived deployments and rotates witness sets at
//!   epoch boundaries, driven through the `AccountedApp` trait
//!   (`execute`, `snapshot_digest`, replay machine, message taps);
//! * the **drivers** — thin clients of the engine: the PeerReview workload
//!   itself (`tnic_peerreview::system`), and the BFT (`tnic-bft`) and chain
//!   replication (`tnic-cr`) deployments via their `with_accountability`
//!   constructors.
//!
//! To attach accountability to a new application: implement `AccountedApp`
//! for the application state (a deterministic `execute` for delivered
//! commands, a `snapshot_digest` of per-node state, and a fresh reference
//! machine witnesses replay), wrap the application's protocol payloads as
//! `Envelope::App`, build the engine over the application's `Cluster`, and
//! route every `Cluster::poll` through the engine — it peels piggybacked
//! commitments, consumes audit control traffic, registers executions in the
//! tamper-evident log and hands the application back its own messages. This
//! module only defines the interface so `tnic-core` stays free of
//! application policy.

use crate::api::{Delivered, NodeId};
use std::cell::RefCell;
use std::rc::Rc;
use tnic_device::attestation::AttestedMessage;
use tnic_sim::time::SimInstant;

/// Observer of the cluster's attested message flow.
///
/// Implementations record per-node commitments (e.g. PeerReview's
/// tamper-evident logs). Callbacks run synchronously inside
/// [`Cluster::auth_send`](crate::api::Cluster::auth_send) /
/// [`Cluster::deliver`](crate::api::Cluster::deliver), so they must not call
/// back into the cluster.
pub trait AccountabilityLayer {
    /// A node attested and transmitted `message` to `to` at virtual time `at`.
    ///
    /// Multicasts invoke this once per receiver with the same message.
    fn on_sent(&mut self, from: NodeId, to: NodeId, message: &AttestedMessage, at: SimInstant);

    /// A verified message landed in `to`'s inbox.
    fn on_delivered(&mut self, to: NodeId, delivered: &Delivered);

    /// Offered the outbound `payload` of a unicast
    /// [`Cluster::auth_send`](crate::api::Cluster::auth_send) *before* it is
    /// attested. Returning `Some(wrapped)` replaces the payload on the wire
    /// (the layer piggybacks pending control data on application traffic);
    /// returning `None` (the default) leaves the payload untouched.
    ///
    /// The wrapped payload is what gets attested, logged by `on_sent` and
    /// delivered — sender and receiver observe identical bytes, so
    /// tamper-evident logs stay consistent. Multicast payloads go through
    /// [`AccountabilityLayer::wrap_multicast`] instead: per-receiver
    /// wrapping would break the single-attestation property.
    fn wrap_outbound(&mut self, from: NodeId, to: NodeId, payload: &[u8]) -> Option<Vec<u8>> {
        let _ = (from, to, payload);
        None
    }

    /// Offered the outbound `payload` of a
    /// [`Cluster::multicast`](crate::api::Cluster::multicast) *once*, before
    /// it is attested. Returning `Some(wrapped)` replaces the payload on the
    /// wire for **every** receiver — the cluster still attests a single
    /// message, so the equivocation-free multicast property is preserved.
    /// Receivers the ride was not addressed to simply ignore the carried
    /// control data (commitments are self-describing and witnesses discard
    /// ones for nodes they do not audit).
    fn wrap_multicast(
        &mut self,
        from: NodeId,
        receivers: &[NodeId],
        payload: &[u8],
    ) -> Option<Vec<u8>> {
        let _ = (from, receivers, payload);
        None
    }

    /// Human-readable name of the layer, used in diagnostics.
    fn label(&self) -> &'static str {
        "accountability"
    }
}

/// A shareable handle to an accountability layer.
///
/// The cluster and the accountability subsystem (which also drives audits)
/// both need access to the layer's state; the simulation is single-threaded,
/// so `Rc<RefCell<..>>` is the right ownership model.
pub type SharedAccountability = Rc<RefCell<dyn AccountabilityLayer>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Cluster;
    use tnic_net::stack::NetworkStackKind;
    use tnic_tee::profile::Baseline;

    /// A layer that simply counts the callbacks it receives.
    #[derive(Debug, Default)]
    struct CountingLayer {
        sent: usize,
        delivered: usize,
    }

    impl AccountabilityLayer for CountingLayer {
        fn on_sent(&mut self, _: NodeId, _: NodeId, _: &AttestedMessage, _: SimInstant) {
            self.sent += 1;
        }

        fn on_delivered(&mut self, _: NodeId, _: &Delivered) {
            self.delivered += 1;
        }

        fn label(&self) -> &'static str {
            "counting"
        }
    }

    #[test]
    fn attached_layer_observes_unicast_and_multicast() {
        let mut cluster = Cluster::fully_connected(3, Baseline::Tnic, NetworkStackKind::Tnic, 5);
        let layer = Rc::new(RefCell::new(CountingLayer::default()));
        cluster.attach_accountability(layer.clone());
        cluster.auth_send(NodeId(0), NodeId(1), b"one").unwrap();
        cluster
            .establish_group(NodeId(0), &[NodeId(1), NodeId(2)])
            .unwrap();
        cluster
            .multicast(NodeId(0), &[NodeId(1), NodeId(2)], b"two")
            .unwrap();
        assert_eq!(layer.borrow().sent, 3, "one unicast + two multicast copies");
        assert_eq!(layer.borrow().delivered, 3);
    }

    #[test]
    fn detached_layer_stops_observing() {
        let mut cluster = Cluster::fully_connected(2, Baseline::Tnic, NetworkStackKind::Tnic, 5);
        let layer = Rc::new(RefCell::new(CountingLayer::default()));
        cluster.attach_accountability(layer.clone());
        cluster
            .auth_send(NodeId(0), NodeId(1), b"observed")
            .unwrap();
        assert!(cluster.detach_accountability().is_some());
        cluster
            .auth_send(NodeId(0), NodeId(1), b"unobserved")
            .unwrap();
        assert_eq!(layer.borrow().sent, 1);
        assert_eq!(layer.borrow().delivered, 1);
    }

    #[test]
    fn rejected_messages_are_never_reported_as_delivered() {
        let mut cluster = Cluster::fully_connected(2, Baseline::Tnic, NetworkStackKind::Tnic, 5);
        let layer = Rc::new(RefCell::new(CountingLayer::default()));
        cluster.attach_accountability(layer.clone());
        let msg = cluster.auth_send(NodeId(0), NodeId(1), b"ok").unwrap();
        // Replay: the verification path rejects it, so the layer must not see
        // a second delivery (it does see the send attempt's first delivery).
        assert!(cluster.deliver(NodeId(0), NodeId(1), msg).is_err());
        assert_eq!(layer.borrow().delivered, 1);
    }
}
