//! Bootstrapping and remote attestation of TNIC devices (paper §4.3, Figure 3).
//!
//! Three mutually trusting parties provision a device deployed in an untrusted
//! cloud: the **manufacturer** burns a device-unique hardware key, the
//! **system designer** supplies the configuration (session keys to install),
//! and the **IP vendor** verifies that a genuine controller runs on a genuine
//! device before shipping the encrypted bitstream and secrets over a mutually
//! authenticated channel.
//!
//! Message flow implemented here (numbers follow Figure 3):
//! * (1) vendor → controller: fresh nonce `n`
//! * (2–3) controller → vendor: `cert = <n, Ctrl_bin cert>` signed with
//!   `Ctrl_priv`
//! * (4–5) vendor verifies the measurement with `HW_key` and the nonce
//! * (6) both sides run an X25519 handshake authenticated by the controller
//!   signature and the vendor's key embedded in the binary (mutual TLS)
//! * (7–8) vendor sends the bitstream and the session secrets over the
//!   channel; the controller installs them and the device becomes
//!   operational.

use crate::error::CoreError;
use crate::verification::{ActionFact, TraceLog};
use std::collections::HashMap;
use tnic_crypto::ed25519::{Keypair, Signature, VerifyingKey};
use tnic_crypto::hkdf::hkdf;
use tnic_crypto::secretbox::SecretBox;
use tnic_crypto::x25519;
use tnic_device::controller::{ControllerBinary, HardwareKey};
use tnic_device::device::TnicDevice;
use tnic_device::types::{DeviceId, SessionId};
use tnic_sim::clock::SimClock;
use tnic_sim::rng::DetRng;

/// The device manufacturer: burns hardware keys and discloses them only to
/// the trusted IP vendor.
#[derive(Debug, Default)]
pub struct Manufacturer {
    burned: HashMap<DeviceId, HardwareKey>,
}

impl Manufacturer {
    /// Creates a manufacturer with no devices yet.
    #[must_use]
    pub fn new() -> Self {
        Manufacturer::default()
    }

    /// Burns a fresh hardware key into a device at production time.
    pub fn burn_hw_key(&mut self, device: DeviceId, rng: &mut DetRng) -> HardwareKey {
        let key = HardwareKey(rng.bytes32());
        self.burned.insert(device, key);
        key
    }

    /// Shares the hardware keys with the trusted IP vendor.
    #[must_use]
    pub fn disclose_to_vendor(&self) -> HashMap<DeviceId, HardwareKey> {
        self.burned.clone()
    }
}

/// Configuration supplied by the system designer: which sessions to install on
/// the device and the secrets for each.
#[derive(Debug, Clone, Default)]
pub struct DesignerConfig {
    /// Session keys to be installed into the attestation kernel.
    pub session_keys: Vec<(SessionId, [u8; 32])>,
}

impl DesignerConfig {
    /// A configuration with `n` fresh session keys.
    #[must_use]
    pub fn with_sessions(n: u32, rng: &mut DetRng) -> Self {
        DesignerConfig {
            session_keys: (1..=n).map(|i| (SessionId(i), rng.bytes32())).collect(),
        }
    }
}

/// The trusted IP vendor.
#[derive(Debug)]
pub struct IpVendor {
    keypair: Keypair,
    hw_keys: HashMap<DeviceId, HardwareKey>,
    expected_binary_hash: [u8; 32],
    bitstream: Vec<u8>,
}

impl IpVendor {
    /// Creates a vendor that knows the manufacturer's hardware keys, the
    /// expected controller binary and the TNIC bitstream to ship.
    #[must_use]
    pub fn new(
        seed: [u8; 32],
        hw_keys: HashMap<DeviceId, HardwareKey>,
        binary: &ControllerBinary,
        bitstream: Vec<u8>,
    ) -> Self {
        IpVendor {
            keypair: Keypair::from_seed(&seed),
            hw_keys,
            expected_binary_hash: binary.measurement(),
            bitstream,
        }
    }

    /// The vendor's public key, embedded into controller binaries.
    #[must_use]
    pub fn public_key(&self) -> VerifyingKey {
        self.keypair.verifying
    }
}

/// The outcome of a successful remote attestation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    /// The attested device.
    pub device: DeviceId,
    /// Number of session keys installed.
    pub sessions_installed: usize,
    /// Measurement of the installed bitstream.
    pub bitstream_hash: [u8; 32],
}

/// Runs the full bootstrapping + remote-attestation protocol between `vendor`
/// and `device`, installing the designer's session keys on success. Action
/// facts are recorded into `trace` so the §4.4 lemmas can be checked.
///
/// # Errors
///
/// Returns [`CoreError::AttestationFailed`] naming the step that failed.
pub fn run_remote_attestation(
    vendor: &mut IpVendor,
    device: &mut TnicDevice,
    config: &DesignerConfig,
    rng: &mut DetRng,
    clock: &SimClock,
    trace: &mut TraceLog,
) -> Result<AttestationReport, CoreError> {
    let device_id = device.id();
    let connection = rng.next_u64();

    // (1) Vendor sends a freshness nonce.
    let nonce = rng.bytes32();

    // (2)-(3) Controller produces the nonce-bound certificate.
    let cert = device.controller().certify(nonce);

    // (4)-(5) Vendor verifies: genuine device (HW key), genuine binary
    // (measurement), fresh nonce, valid controller signature.
    let hw_key = vendor
        .hw_keys
        .get(&device_id)
        .ok_or(CoreError::AttestationFailed("unknown device"))?;
    if !cert.verify(hw_key, &vendor.expected_binary_hash, &nonce) {
        return Err(CoreError::AttestationFailed("certificate verification"));
    }

    // (6) Mutually authenticated channel: X25519 handshake where each side
    // signs its ephemeral public key — the controller with Ctrl_priv (already
    // bound to the device by the certificate), the vendor with the key
    // embedded in the controller binary.
    let mut ctrl_secret = rng.bytes32();
    ctrl_secret = x25519::clamp_scalar(ctrl_secret);
    let ctrl_public = x25519::public_key(&ctrl_secret);
    let ctrl_sig = device.controller().sign(&ctrl_public);

    let mut vendor_secret = rng.bytes32();
    vendor_secret = x25519::clamp_scalar(vendor_secret);
    let vendor_public = x25519::public_key(&vendor_secret);
    let vendor_sig = vendor.keypair.signing.sign(&vendor_public);

    // Controller checks the vendor signature with the embedded key.
    device
        .controller()
        .ip_vendor_public()
        .verify(&vendor_public, &vendor_sig)
        .map_err(|_| CoreError::AttestationFailed("vendor channel authentication"))?;
    // Vendor checks the controller signature with the certified Ctrl_pub.
    cert.binary_cert
        .controller_public
        .verify(&ctrl_public, &ctrl_sig)
        .map_err(|_| CoreError::AttestationFailed("controller channel authentication"))?;

    // Both sides derive the shared channel key.
    let vendor_shared = x25519::shared_secret(&vendor_secret, &ctrl_public);
    let ctrl_shared = x25519::shared_secret(&ctrl_secret, &vendor_public);
    if vendor_shared != ctrl_shared {
        return Err(CoreError::AttestationFailed("key agreement"));
    }
    // One HKDF expansion yields the channel key *and* a distinct nonce per
    // sealed message. Both parties derive them identically; reusing a fixed
    // nonce for the bitstream and the secrets under the same key would let a
    // network observer XOR the two ciphertexts (stream-cipher keystream
    // reuse).
    let channel_okm = hkdf(
        &nonce,
        &vendor_shared,
        b"tnic remote attestation channel",
        32 + 12 + 12,
    );
    let channel = SecretBox::new(&channel_okm[..32]);
    let nonce_bitstream: [u8; 12] = channel_okm[32..44].try_into().expect("sized");
    let nonce_secrets: [u8; 12] = channel_okm[44..56].try_into().expect("sized");

    // The device half of the attestation is now complete.
    trace.record(
        clock.now(),
        ActionFact::DeviceAttested {
            device: device_id,
            connection,
        },
    );

    // (7)-(8) Vendor seals the bitstream and the designer's secrets; the
    // controller opens them, loads the bitstream and installs the session keys.
    let mut secrets = Vec::new();
    for (session, key) in &config.session_keys {
        secrets.extend_from_slice(&session.0.to_le_bytes());
        secrets.extend_from_slice(key);
    }
    let sealed_bitstream = channel.seal(&nonce_bitstream, b"bitstream", &vendor.bitstream);
    let sealed_secrets = channel.seal(&nonce_secrets, b"secrets", &secrets);

    let bitstream = channel
        .open(&nonce_bitstream, b"bitstream", &sealed_bitstream)
        .map_err(|_| CoreError::AttestationFailed("bitstream decryption"))?;
    let opened_secrets = channel
        .open(&nonce_secrets, b"secrets", &sealed_secrets)
        .map_err(|_| CoreError::AttestationFailed("secret decryption"))?;

    device.controller_mut().install_bitstream(bitstream);
    let mut sessions_installed = 0;
    for chunk in opened_secrets.chunks_exact(36) {
        let session = SessionId(u32::from_le_bytes(chunk[..4].try_into().unwrap()));
        let mut key = [0u8; 32];
        key.copy_from_slice(&chunk[4..]);
        device.provision_session(session, key);
        sessions_installed += 1;
    }

    // Vendor-side completion.
    trace.record(
        clock.now(),
        ActionFact::VendorAttested {
            device: device_id,
            connection,
        },
    );

    let bitstream_hash = device
        .controller()
        .bitstream_measurement()
        .map_err(CoreError::Device)?;
    Ok(AttestationReport {
        device: device_id,
        sessions_installed,
        bitstream_hash,
    })
}

/// A convenience helper: manufactures a device, builds the matching vendor and
/// runs remote attestation end to end. Returns the provisioned device, the
/// report and the recorded trace.
///
/// # Errors
///
/// Propagates [`CoreError::AttestationFailed`] if any step fails.
pub fn provision_device(
    device_id: DeviceId,
    sessions: u32,
    seed: u64,
) -> Result<(TnicDevice, AttestationReport, TraceLog), CoreError> {
    let mut rng = DetRng::new(seed);
    let clock = SimClock::new();
    let mut trace = TraceLog::new();

    let mut manufacturer = Manufacturer::new();
    let hw_key = manufacturer.burn_hw_key(device_id, &mut rng);
    let binary = ControllerBinary::reference("1.0");
    let vendor_seed = rng.bytes32();
    let mut vendor = IpVendor::new(
        vendor_seed,
        manufacturer.disclose_to_vendor(),
        &binary,
        b"tnic-bitstream-v1".to_vec(),
    );

    let mut device = TnicDevice::new(
        tnic_device::types::DeviceConfig::for_device(device_id),
        hw_key,
        vendor.public_key(),
        rng.bytes32(),
    );

    let config = DesignerConfig::with_sessions(sessions, &mut rng);
    let report = run_remote_attestation(
        &mut vendor,
        &mut device,
        &config,
        &mut rng,
        &clock,
        &mut trace,
    )?;
    Ok((device, report, trace))
}

/// A dummy signature accessor used in tests to exercise tampering.
#[doc(hidden)]
pub fn forge_signature() -> Signature {
    Signature([0u8; 64])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verification::TraceChecker;
    use tnic_device::types::DeviceConfig;

    #[test]
    fn end_to_end_provisioning_succeeds() {
        let (device, report, trace) = provision_device(DeviceId(7), 3, 99).unwrap();
        assert_eq!(report.device, DeviceId(7));
        assert_eq!(report.sessions_installed, 3);
        assert!(device.controller().is_provisioned());
        assert!(device.has_session(SessionId(1)));
        assert!(device.has_session(SessionId(3)));
        assert!(!device.has_session(SessionId(4)));
        let check = TraceChecker::check(&trace);
        assert!(check.holds(), "{:?}", check.violations);
    }

    #[test]
    fn wrong_hardware_key_fails_attestation() {
        let mut rng = DetRng::new(5);
        let clock = SimClock::new();
        let mut trace = TraceLog::new();
        let binary = ControllerBinary::reference("1.0");
        // Vendor knows a *different* hardware key than the one in the device.
        let mut hw_keys = HashMap::new();
        hw_keys.insert(DeviceId(1), HardwareKey([0xAA; 32]));
        let mut vendor = IpVendor::new(rng.bytes32(), hw_keys, &binary, b"bits".to_vec());
        let mut device = TnicDevice::new(
            DeviceConfig::for_device(DeviceId(1)),
            HardwareKey([0xBB; 32]),
            vendor.public_key(),
            rng.bytes32(),
        );
        let config = DesignerConfig::with_sessions(1, &mut rng);
        let err = run_remote_attestation(
            &mut vendor,
            &mut device,
            &config,
            &mut rng,
            &clock,
            &mut trace,
        )
        .unwrap_err();
        assert_eq!(
            err,
            CoreError::AttestationFailed("certificate verification")
        );
        assert!(!device.controller().is_provisioned());
    }

    #[test]
    fn wrong_binary_measurement_fails_attestation() {
        let mut rng = DetRng::new(6);
        let clock = SimClock::new();
        let mut trace = TraceLog::new();
        let mut manufacturer = Manufacturer::new();
        let hw_key = manufacturer.burn_hw_key(DeviceId(2), &mut rng);
        // The vendor expects version 2.0 but the device runs 1.0.
        let expected = ControllerBinary::reference("2.0");
        let mut vendor = IpVendor::new(
            rng.bytes32(),
            manufacturer.disclose_to_vendor(),
            &expected,
            b"bits".to_vec(),
        );
        let mut device = TnicDevice::new(
            DeviceConfig::for_device(DeviceId(2)),
            hw_key,
            vendor.public_key(),
            rng.bytes32(),
        );
        let config = DesignerConfig::with_sessions(1, &mut rng);
        assert!(run_remote_attestation(
            &mut vendor,
            &mut device,
            &config,
            &mut rng,
            &clock,
            &mut trace
        )
        .is_err());
    }

    #[test]
    fn unknown_device_fails_attestation() {
        let mut rng = DetRng::new(7);
        let clock = SimClock::new();
        let mut trace = TraceLog::new();
        let binary = ControllerBinary::reference("1.0");
        let mut vendor = IpVendor::new(rng.bytes32(), HashMap::new(), &binary, b"bits".to_vec());
        let mut device = TnicDevice::new(
            DeviceConfig::for_device(DeviceId(3)),
            HardwareKey([1u8; 32]),
            vendor.public_key(),
            rng.bytes32(),
        );
        let config = DesignerConfig::default();
        let err = run_remote_attestation(
            &mut vendor,
            &mut device,
            &config,
            &mut rng,
            &clock,
            &mut trace,
        )
        .unwrap_err();
        assert_eq!(err, CoreError::AttestationFailed("unknown device"));
    }

    #[test]
    fn provisioned_devices_share_working_sessions() {
        // Two devices provisioned with the same designer config can exchange
        // attested messages on the shared sessions.
        let mut rng = DetRng::new(8);
        let clock = SimClock::new();
        let mut trace = TraceLog::new();
        let mut manufacturer = Manufacturer::new();
        let binary = ControllerBinary::reference("1.0");
        let k1 = manufacturer.burn_hw_key(DeviceId(1), &mut rng);
        let k2 = manufacturer.burn_hw_key(DeviceId(2), &mut rng);
        let mut vendor = IpVendor::new(
            rng.bytes32(),
            manufacturer.disclose_to_vendor(),
            &binary,
            b"bits".to_vec(),
        );
        let mut d1 = TnicDevice::new(
            DeviceConfig::for_device(DeviceId(1)),
            k1,
            vendor.public_key(),
            rng.bytes32(),
        );
        let mut d2 = TnicDevice::new(
            DeviceConfig::for_device(DeviceId(2)),
            k2,
            vendor.public_key(),
            rng.bytes32(),
        );
        let config = DesignerConfig::with_sessions(1, &mut rng);
        run_remote_attestation(&mut vendor, &mut d1, &config, &mut rng, &clock, &mut trace)
            .unwrap();
        run_remote_attestation(&mut vendor, &mut d2, &config, &mut rng, &clock, &mut trace)
            .unwrap();
        let (msg, _) = d1.local_send(SessionId(1), b"cross-device").unwrap();
        d2.local_verify(&msg).unwrap();
        assert!(TraceChecker::check(&trace).holds());
    }
}
