//! The attestation provider abstraction.
//!
//! The paper evaluates every distributed system over five attestation
//! back-ends (§8.3): the SSL library, the native SSL server, SGX, AMD SEV and
//! TNIC itself. A [`Provider`] hides which back-end generates and verifies
//! attestations so the systems in `tnic-a2m`/`tnic-bft`/`tnic-cr`/
//! `tnic-peerreview` are written once and measured against all of them —
//! exactly the paper's methodology of swapping the attestation component.

use tnic_device::attestation::{AttestationKernel, AttestationTiming, AttestedMessage};
use tnic_device::dma::{DmaEngine, DmaMode};
use tnic_device::error::DeviceError;
use tnic_device::types::{DeviceId, SessionId};
use tnic_sim::time::SimDuration;
use tnic_tee::attestor::TeeAttestor;
use tnic_tee::profile::Baseline;

/// An attestation provider: either the (simulated) TNIC hardware or one of the
/// host-side baselines.
#[derive(Debug, Clone)]
pub struct Provider {
    baseline: Baseline,
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    /// The TNIC data path: attestation kernel + kernel-bypass DMA.
    Hardware {
        kernel: AttestationKernel,
        dma: DmaEngine,
    },
    /// A host-side baseline (native or TEE-hosted service).
    Host(TeeAttestor),
}

impl Provider {
    /// Creates a provider of the given flavour for logical node `node`.
    #[must_use]
    pub fn new(baseline: Baseline, node: DeviceId, seed: u64) -> Self {
        let inner = match baseline {
            Baseline::Tnic => Inner::Hardware {
                kernel: AttestationKernel::new(node, AttestationTiming::paper_calibrated()),
                dma: DmaEngine::paper_calibrated(DmaMode::Asynchronous),
            },
            other => Inner::Host(TeeAttestor::new(other, node, seed)),
        };
        Provider { baseline, inner }
    }

    /// Which baseline this provider emulates.
    #[must_use]
    pub fn baseline(&self) -> Baseline {
        self.baseline
    }

    /// The node identity stamped into attestations.
    #[must_use]
    pub fn node(&self) -> DeviceId {
        match &self.inner {
            Inner::Hardware { kernel, .. } => kernel.device(),
            Inner::Host(att) => att.node(),
        }
    }

    /// Installs a per-session symmetric key.
    pub fn install_session_key(&mut self, session: SessionId, key: [u8; 32]) {
        match &mut self.inner {
            Inner::Hardware { kernel, .. } => kernel.install_session_key(session, key),
            Inner::Host(att) => att.install_session_key(session, key),
        }
    }

    /// Returns `true` if a key is installed for `session`.
    #[must_use]
    pub fn has_session(&self, session: SessionId) -> bool {
        match &self.inner {
            Inner::Hardware { kernel, .. } => kernel.has_session(session),
            Inner::Host(att) => att.has_session(session),
        }
    }

    /// Generates an attestation for `payload` on `session`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownSession`] when no key is installed.
    pub fn attest(
        &mut self,
        session: SessionId,
        payload: &[u8],
    ) -> Result<(AttestedMessage, SimDuration), DeviceError> {
        match &mut self.inner {
            Inner::Hardware { kernel, dma } => {
                let h2d = dma.host_to_device(payload.len());
                let (msg, hmac) = kernel.attest(session, payload)?;
                let d2h = dma.device_to_host(msg.wire_len());
                Ok((msg, h2d + hmac + d2h))
            }
            Inner::Host(att) => att.attest(session, payload),
        }
    }

    /// Generates an attestation for `payload`, appending the wire format to
    /// `out` (the allocation-free transmit path — callers reuse the buffer).
    /// The TNIC back-end writes the wire bytes in one pass with no
    /// intermediate message; host baselines fall back to attest-then-encode.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownSession`] when no key is installed.
    pub fn attest_into(
        &mut self,
        session: SessionId,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<SimDuration, DeviceError> {
        match &mut self.inner {
            Inner::Hardware { kernel, dma } => {
                let h2d = dma.host_to_device(payload.len());
                let hmac = kernel.attest_into(session, payload, out)?;
                let wire_len = tnic_device::attestation::WIRE_OVERHEAD + payload.len();
                let d2h = dma.device_to_host(wire_len);
                Ok(h2d + hmac + d2h)
            }
            Inner::Host(att) => {
                let (msg, cost) = att.attest(session, payload)?;
                msg.encode_into(out);
                Ok(cost)
            }
        }
    }

    /// Verifies an attested message, enforcing receive-counter order.
    ///
    /// # Errors
    ///
    /// Propagates [`DeviceError::BadAttestation`] / [`DeviceError::CounterMismatch`].
    pub fn verify(&mut self, message: &AttestedMessage) -> Result<SimDuration, DeviceError> {
        match &mut self.inner {
            Inner::Hardware { kernel, dma } => {
                let h2d = dma.host_to_device(message.wire_len());
                let cost = kernel.verify(message)?;
                Ok(h2d + cost)
            }
            Inner::Host(att) => att.verify(message),
        }
    }

    /// Verifies only the cryptographic binding (for out-of-order log audits).
    ///
    /// # Errors
    ///
    /// Propagates [`DeviceError::BadAttestation`].
    pub fn verify_binding(
        &mut self,
        message: &AttestedMessage,
    ) -> Result<SimDuration, DeviceError> {
        match &mut self.inner {
            Inner::Hardware { kernel, dma } => {
                let h2d = dma.host_to_device(message.wire_len());
                let cost = kernel.verify_binding(message)?;
                Ok(h2d + cost)
            }
            Inner::Host(att) => att.verify_binding(message),
        }
    }

    /// The counter that will be assigned to the next message sent on `session`
    /// (used by state-simulation in the transformation and by the BFT
    /// replicas to predict peers' counters).
    #[must_use]
    pub fn peek_send_counter(&self, session: SessionId) -> u64 {
        match &self.inner {
            Inner::Hardware { kernel, .. } => kernel.peek_send_counter(session),
            // Host baselines mirror the same counter discipline; expose it via
            // a dedicated kernel query for hardware and recompute for hosts.
            Inner::Host(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provider_pair(baseline: Baseline) -> (Provider, Provider) {
        let mut a = Provider::new(baseline, DeviceId(1), 1);
        let mut b = Provider::new(baseline, DeviceId(2), 2);
        a.install_session_key(SessionId(1), [9u8; 32]);
        b.install_session_key(SessionId(1), [9u8; 32]);
        (a, b)
    }

    #[test]
    fn all_baselines_round_trip() {
        for baseline in Baseline::ALL {
            let (mut a, mut b) = provider_pair(baseline);
            let (msg, cost) = a.attest(SessionId(1), b"request").unwrap();
            assert!(cost > SimDuration::ZERO, "{baseline}");
            b.verify(&msg).unwrap_or_else(|e| panic!("{baseline}: {e}"));
        }
    }

    #[test]
    fn hardware_and_host_providers_interoperate() {
        // A TNIC sender can be verified by an SGX-hosted verifier holding the
        // same session key (transferable authentication across back-ends).
        let mut tnic = Provider::new(Baseline::Tnic, DeviceId(1), 1);
        let mut sgx = Provider::new(Baseline::Sgx, DeviceId(2), 2);
        tnic.install_session_key(SessionId(3), [4u8; 32]);
        sgx.install_session_key(SessionId(3), [4u8; 32]);
        let (msg, _) = tnic.attest(SessionId(3), b"cross-backend").unwrap();
        sgx.verify(&msg).unwrap();
    }

    #[test]
    fn tnic_provider_faster_than_tee_but_slower_than_native_lib() {
        let mut totals = std::collections::HashMap::new();
        for baseline in [Baseline::Tnic, Baseline::Sgx, Baseline::SslLib] {
            let (mut a, _) = provider_pair(baseline);
            let mut total = SimDuration::ZERO;
            for _ in 0..50 {
                total += a.attest(SessionId(1), &[0u8; 64]).unwrap().1;
            }
            totals.insert(baseline.label(), total);
        }
        assert!(totals["TNIC"] < totals["SGX"]);
        assert!(totals["TNIC"] > totals["SSL-lib"]);
    }

    #[test]
    fn counter_discipline_enforced_by_all_backends() {
        for baseline in [Baseline::Tnic, Baseline::AmdSev] {
            let (mut a, mut b) = provider_pair(baseline);
            let (m0, _) = a.attest(SessionId(1), b"0").unwrap();
            let (m1, _) = a.attest(SessionId(1), b"1").unwrap();
            assert!(b.verify(&m1).is_err(), "{baseline}: gap must be rejected");
            b.verify(&m0).unwrap();
            b.verify(&m1).unwrap();
            assert!(
                b.verify(&m1).is_err(),
                "{baseline}: replay must be rejected"
            );
        }
    }

    #[test]
    fn attest_into_matches_owned_encoding_on_every_backend() {
        for baseline in Baseline::ALL {
            // Two providers with identical identity and state: the in-place
            // wire bytes must equal the owned attest-then-encode bytes.
            let mut owned = Provider::new(baseline, DeviceId(1), 1);
            let mut inplace = Provider::new(baseline, DeviceId(1), 1);
            let mut verifier = Provider::new(baseline, DeviceId(2), 2);
            for p in [&mut owned, &mut inplace, &mut verifier] {
                p.install_session_key(SessionId(1), [9u8; 32]);
            }
            let (msg, owned_cost) = owned.attest(SessionId(1), b"in place").unwrap();
            let mut wire = Vec::new();
            let cost = inplace
                .attest_into(SessionId(1), b"in place", &mut wire)
                .unwrap();
            assert_eq!(wire, msg.encode(), "{baseline}");
            assert_eq!(cost, owned_cost, "{baseline}: same latency model");
            verifier
                .verify(&tnic_device::attestation::AttestedMessage::decode(&wire).unwrap())
                .unwrap_or_else(|e| panic!("{baseline}: {e}"));
        }
    }

    #[test]
    fn missing_session_reported() {
        let mut p = Provider::new(Baseline::Tnic, DeviceId(1), 1);
        assert!(!p.has_session(SessionId(9)));
        assert!(p.attest(SessionId(9), b"x").is_err());
    }
}
