//! Executable verification of the TNIC security lemmas (paper §4.4).
//!
//! The paper proves its protocols with the Tamarin prover over a symbolic
//! model. Tamarin is not available here, so this module provides the runtime
//! counterpart: protocol executions record *action facts* (the same facts the
//! Tamarin model uses — attestation completion, message send, message accept)
//! into a [`TraceLog`], and [`TraceChecker`] checks the paper's lemmas over
//! the recorded trace:
//!
//! 1. **Remote attestation** (Eq. 1): whenever the IP vendor finishes
//!    attesting a device, the device finished its part earlier.
//! 2. **Transferable authentication** (Eq. 2): every accepted message was
//!    previously sent by an authentic endpoint.
//! 3. **Non-equivocation** (Eq. 3–5): no accepted message skips earlier sent
//!    messages, no reordering, no duplicate acceptance.
//!
//! Honest executions must satisfy every lemma; adversarial executions (tests
//! inject tampering, replay and equivocation) must either satisfy them or have
//! the offending message rejected before it is ever *accepted* — which is
//! exactly what the checker validates.

use serde::{Deserialize, Serialize};
use tnic_device::types::{DeviceId, SessionId};
use tnic_sim::time::SimInstant;

/// An action fact recorded during protocol execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionFact {
    /// A device finished the remote-attestation protocol (`D_tnic(c)`).
    DeviceAttested {
        /// The attested device.
        device: DeviceId,
        /// Connection/configuration identifier.
        connection: u64,
    },
    /// The IP vendor finished attesting a device (`D_ipv(c)`).
    VendorAttested {
        /// The attested device.
        device: DeviceId,
        /// Connection/configuration identifier.
        connection: u64,
    },
    /// An endpoint sent message `counter` on `session` (`S_e(m)`).
    Sent {
        /// The sending endpoint.
        endpoint: DeviceId,
        /// The session the message belongs to.
        session: SessionId,
        /// The attestation counter bound to the message.
        counter: u64,
        /// Digest of the payload (for equivocation detection).
        digest: [u8; 32],
    },
    /// An endpoint accepted (verified and delivered) a message (`A_e(m)`).
    Accepted {
        /// The accepting endpoint.
        endpoint: DeviceId,
        /// The session the message belongs to.
        session: SessionId,
        /// The sender whose attestation was verified.
        sender: DeviceId,
        /// The attestation counter bound to the message.
        counter: u64,
        /// Digest of the payload.
        digest: [u8; 32],
    },
}

/// A timestamped trace of action facts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceLog {
    events: Vec<(SimInstant, ActionFact)>,
}

impl TraceLog {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        TraceLog { events: Vec::new() }
    }

    /// Appends a fact observed at `at`.
    pub fn record(&mut self, at: SimInstant, fact: ActionFact) {
        self.events.push((at, fact));
    }

    /// All recorded events in recording order.
    #[must_use]
    pub fn events(&self) -> &[(SimInstant, ActionFact)] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Result of checking all lemmas over a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Violations found, one human-readable line each. Empty means all lemmas
    /// hold.
    pub violations: Vec<String>,
    /// Number of send facts examined.
    pub sends: usize,
    /// Number of accept facts examined.
    pub accepts: usize,
}

impl VerificationReport {
    /// Returns `true` when every lemma holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The lemma checker.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceChecker;

impl TraceChecker {
    /// Checks all lemmas over `trace`.
    #[must_use]
    pub fn check(trace: &TraceLog) -> VerificationReport {
        let mut violations = Vec::new();
        violations.extend(Self::check_remote_attestation(trace));
        violations.extend(Self::check_transferable_authentication(trace));
        violations.extend(Self::check_non_equivocation(trace));
        let sends = trace
            .events()
            .iter()
            .filter(|(_, f)| matches!(f, ActionFact::Sent { .. }))
            .count();
        let accepts = trace
            .events()
            .iter()
            .filter(|(_, f)| matches!(f, ActionFact::Accepted { .. }))
            .count();
        VerificationReport {
            violations,
            sends,
            accepts,
        }
    }

    /// Lemma (1): `D_ipv(c) @ ti ⇒ ∃ tj < ti. D_tnic(c) @ tj`.
    fn check_remote_attestation(trace: &TraceLog) -> Vec<String> {
        let mut violations = Vec::new();
        for (i, (at, fact)) in trace.events().iter().enumerate() {
            if let ActionFact::VendorAttested { device, connection } = fact {
                let preceded = trace.events()[..i].iter().any(|(tj, f)| {
                    tj <= at
                        && matches!(f, ActionFact::DeviceAttested { device: d, connection: c }
                            if d == device && c == connection)
                });
                if !preceded {
                    violations.push(format!(
                        "remote attestation: vendor attested {device} (connection {connection}) \
                         without a prior device-side attestation"
                    ));
                }
            }
        }
        violations
    }

    /// Lemma (2): every accepted message was sent before by some endpoint,
    /// with the same session, counter and payload digest.
    fn check_transferable_authentication(trace: &TraceLog) -> Vec<String> {
        let mut violations = Vec::new();
        for (i, (at, fact)) in trace.events().iter().enumerate() {
            if let ActionFact::Accepted {
                session,
                sender,
                counter,
                digest,
                ..
            } = fact
            {
                let matched = trace.events()[..i].iter().any(|(tj, f)| {
                    tj <= at
                        && matches!(f, ActionFact::Sent { endpoint, session: s, counter: c, digest: d }
                            if endpoint == sender && s == session && c == counter && d == digest)
                });
                if !matched {
                    violations.push(format!(
                        "transferable authentication: accepted counter {counter} on {session} \
                         claiming sender {sender} was never sent by it"
                    ));
                }
            }
        }
        violations
    }

    /// Lemmas (3)–(5): per (receiver, session, sender): counters are accepted
    /// in exactly increasing order starting from 0 with no gaps (no lost
    /// messages, no reordering) and no counter is accepted twice.
    fn check_non_equivocation(trace: &TraceLog) -> Vec<String> {
        use std::collections::HashMap;
        let mut violations = Vec::new();
        let mut next_expected: HashMap<(DeviceId, SessionId, DeviceId), u64> = HashMap::new();
        for (_, fact) in trace.events() {
            if let ActionFact::Accepted {
                endpoint,
                session,
                sender,
                counter,
                ..
            } = fact
            {
                let key = (*endpoint, *session, *sender);
                let expected = next_expected.entry(key).or_insert(0);
                if *counter < *expected {
                    violations.push(format!(
                        "non-equivocation: {endpoint} accepted counter {counter} on {session} twice"
                    ));
                } else if *counter > *expected {
                    violations.push(format!(
                        "non-equivocation: {endpoint} accepted counter {counter} on {session} \
                         while messages {expected}..{counter} were never accepted (loss/reorder)"
                    ));
                    *expected = counter + 1;
                } else {
                    *expected += 1;
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(tag: u8) -> [u8; 32] {
        [tag; 32]
    }

    fn t(us: u64) -> SimInstant {
        SimInstant::from_nanos(us * 1_000)
    }

    fn honest_trace() -> TraceLog {
        let mut log = TraceLog::new();
        log.record(
            t(0),
            ActionFact::DeviceAttested {
                device: DeviceId(1),
                connection: 7,
            },
        );
        log.record(
            t(1),
            ActionFact::VendorAttested {
                device: DeviceId(1),
                connection: 7,
            },
        );
        for counter in 0..3u64 {
            log.record(
                t(10 + counter),
                ActionFact::Sent {
                    endpoint: DeviceId(1),
                    session: SessionId(1),
                    counter,
                    digest: digest(counter as u8),
                },
            );
            log.record(
                t(20 + counter),
                ActionFact::Accepted {
                    endpoint: DeviceId(2),
                    session: SessionId(1),
                    sender: DeviceId(1),
                    counter,
                    digest: digest(counter as u8),
                },
            );
        }
        log
    }

    #[test]
    fn honest_trace_satisfies_all_lemmas() {
        let report = TraceChecker::check(&honest_trace());
        assert!(report.holds(), "{:?}", report.violations);
        assert_eq!(report.sends, 3);
        assert_eq!(report.accepts, 3);
    }

    #[test]
    fn vendor_attestation_without_device_is_flagged() {
        let mut log = TraceLog::new();
        log.record(
            t(0),
            ActionFact::VendorAttested {
                device: DeviceId(1),
                connection: 1,
            },
        );
        let report = TraceChecker::check(&log);
        assert!(!report.holds());
        assert!(report.violations[0].contains("remote attestation"));
    }

    #[test]
    fn forged_acceptance_is_flagged() {
        let mut log = TraceLog::new();
        log.record(
            t(5),
            ActionFact::Accepted {
                endpoint: DeviceId(2),
                session: SessionId(1),
                sender: DeviceId(1),
                counter: 0,
                digest: digest(9),
            },
        );
        let report = TraceChecker::check(&log);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("transferable authentication")));
    }

    #[test]
    fn equivocation_different_payload_same_counter_is_flagged() {
        let mut log = honest_trace();
        // The sender "sent" counter 3 with one payload but the receiver
        // accepted a different payload under that counter.
        log.record(
            t(40),
            ActionFact::Sent {
                endpoint: DeviceId(1),
                session: SessionId(1),
                counter: 3,
                digest: digest(10),
            },
        );
        log.record(
            t(41),
            ActionFact::Accepted {
                endpoint: DeviceId(2),
                session: SessionId(1),
                sender: DeviceId(1),
                counter: 3,
                digest: digest(11),
            },
        );
        let report = TraceChecker::check(&log);
        assert!(!report.holds());
    }

    #[test]
    fn double_acceptance_is_flagged() {
        let mut log = honest_trace();
        log.record(
            t(50),
            ActionFact::Accepted {
                endpoint: DeviceId(2),
                session: SessionId(1),
                sender: DeviceId(1),
                counter: 0,
                digest: digest(0),
            },
        );
        let report = TraceChecker::check(&log);
        assert!(report.violations.iter().any(|v| v.contains("twice")));
    }

    #[test]
    fn gap_in_accepted_counters_is_flagged() {
        let mut log = TraceLog::new();
        for counter in [0u64, 2] {
            log.record(
                t(counter),
                ActionFact::Sent {
                    endpoint: DeviceId(1),
                    session: SessionId(1),
                    counter,
                    digest: digest(counter as u8),
                },
            );
            log.record(
                t(10 + counter),
                ActionFact::Accepted {
                    endpoint: DeviceId(2),
                    session: SessionId(1),
                    sender: DeviceId(1),
                    counter,
                    digest: digest(counter as u8),
                },
            );
        }
        let report = TraceChecker::check(&log);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("never accepted")));
    }

    #[test]
    fn empty_trace_trivially_holds() {
        let report = TraceChecker::check(&TraceLog::new());
        assert!(report.holds());
        assert!(TraceLog::new().is_empty());
    }
}
