//! # TNIC core library
//!
//! The paper's primary contribution as a reusable Rust library: a trusted
//! NIC-level substrate providing **transferable authentication** and
//! **non-equivocation**, a programming API modelled on one-sided RDMA
//! (Table 1), and a generic recipe for transforming crash-fault-tolerant
//! distributed systems into Byzantine-fault-tolerant ones without increasing
//! the replication factor (§6.2).
//!
//! * [`api`] — the programming API: [`api::Cluster`] wires nodes together over
//!   an attestation [`provider::Provider`] (TNIC hardware or a TEE baseline)
//!   and a modelled network stack, exposing `auth_send`, `local_send`,
//!   `local_verify`, `poll`, `rem_read`/`rem_write` and equivocation-free
//!   multicast.
//! * [`provider`] — the attestation back-end abstraction (TNIC vs SSL-lib,
//!   SSL-server, SGX, AMD-sev).
//! * [`transform`] — the CFT→BFT transformation wrappers (Listing 1).
//! * [`accountability`] — the pluggable accountability hook point used by the
//!   PeerReview case study (`tnic-peerreview`) to maintain tamper-evident
//!   logs of every attested send and verified delivery.
//! * [`attestation`] — device bootstrapping and remote attestation (Figure 3).
//! * [`verification`] — the executable counterpart of the paper's Tamarin
//!   lemmas (§4.4): trace recording and checking.
//! * [`error`] — the library error type.
//!
//! # Quick start
//!
//! ```
//! use tnic_core::api::{Cluster, NodeId};
//! use tnic_net::stack::NetworkStackKind;
//! use tnic_tee::profile::Baseline;
//!
//! // Two nodes with TNIC-backed attestation over the TNIC network stack.
//! let mut cluster = Cluster::fully_connected(2, Baseline::Tnic, NetworkStackKind::Tnic, 7);
//! cluster.auth_send(NodeId(0), NodeId(1), b"client request").unwrap();
//! let delivered = cluster.poll(NodeId(1)).unwrap();
//! assert_eq!(delivered[0].message.payload, b"client request");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountability;
pub mod api;
pub mod attestation;
pub mod error;
pub mod provider;
pub mod transform;
pub mod verification;

pub use accountability::{AccountabilityLayer, SharedAccountability};
pub use api::{Cluster, Delivered, NodeId};
pub use error::CoreError;
pub use provider::Provider;
pub use verification::{ActionFact, TraceChecker, TraceLog};

/// Re-export of the attested message type carried by every API.
pub use tnic_device::attestation::AttestedMessage;
/// Re-export of the session identifier type.
pub use tnic_device::types::SessionId;
/// Re-export of the network stack models used to select the transport.
pub use tnic_net::stack::NetworkStackKind;
/// Re-export of the baseline enumeration used to select attestation back-ends.
pub use tnic_tee::profile::Baseline;
