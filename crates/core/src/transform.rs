//! The generic CFT→BFT transformation recipe (paper §6.2, Listing 1).
//!
//! The transformation wraps a CFT system's `send` and `recv` operations. On
//! `send`, the sender transmits the client message together with a digest of
//! its own post-execution state and (optionally) the last state it knows of
//! the receiver. On `recv`, the receiver (i) verifies the attestation, (ii)
//! *simulates* the sender's execution to check that the sender's claimed state
//! follows the protocol specification, and (iii) checks that the sender has
//! seen the receiver's latest state, ensuring both nodes share the same view.
//! Transferable authentication gives safety, the simulation gives integrity,
//! and the non-equivocation counters give consistency — which is why the
//! resulting system tolerates Byzantine nodes with only 2f+1 replicas.

use crate::api::{Cluster, NodeId};
use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use tnic_crypto::sha256::sha256;
use tnic_device::attestation::AttestedMessage;

/// A deterministic replicated state machine, the unit the transformation
/// protects. The paper requires deterministic specifications (§6.2).
pub trait StateMachine: Clone {
    /// Executes a command, mutating the state and returning the output.
    fn execute(&mut self, command: &[u8]) -> Vec<u8>;

    /// A digest of the current state.
    fn state_digest(&self) -> [u8; 32];
}

/// A simple counter state machine used by tests, examples and the BFT
/// application (the paper's replicated-counter service).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterMachine {
    value: u64,
    applied: u64,
}

impl CounterMachine {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        CounterMachine::default()
    }

    /// The current counter value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of commands applied so far.
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied
    }
}

impl StateMachine for CounterMachine {
    fn execute(&mut self, command: &[u8]) -> Vec<u8> {
        // Any command increments; the command bytes are folded into the output
        // so different requests have distinguishable outputs.
        self.value += 1;
        self.applied += 1;
        let mut out = Vec::with_capacity(8 + command.len());
        out.extend_from_slice(&self.value.to_le_bytes());
        out.extend_from_slice(command);
        out
    }

    fn state_digest(&self) -> [u8; 32] {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&self.value.to_le_bytes());
        bytes[8..].copy_from_slice(&self.applied.to_le_bytes());
        sha256(&bytes)
    }
}

/// The wire format produced by the transformed `send` wrapper: the client
/// message, the sender's post-execution state digest and output, and the
/// receiver state the sender last observed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WrappedMessage {
    /// The original client message/command.
    pub command: Vec<u8>,
    /// The sender's output for this command.
    pub sender_output: Vec<u8>,
    /// Digest of the sender's state after executing the command.
    pub sender_state: [u8; 32],
    /// Digest of the receiver's state as last seen by the sender.
    pub receiver_state: [u8; 32],
}

impl WrappedMessage {
    /// Serialises the wrapper for transmission.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.command.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.command);
        out.extend_from_slice(&(self.sender_output.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.sender_output);
        out.extend_from_slice(&self.sender_state);
        out.extend_from_slice(&self.receiver_state);
        out
    }

    /// Parses a wrapper from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TransformViolation`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, CoreError> {
        let err = CoreError::TransformViolation("malformed wrapped message");
        if bytes.len() < 4 {
            return Err(err);
        }
        let cmd_len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        let mut off = 4;
        if bytes.len() < off + cmd_len + 4 {
            return Err(err);
        }
        let command = bytes[off..off + cmd_len].to_vec();
        off += cmd_len;
        let out_len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        if bytes.len() != off + out_len + 64 {
            return Err(err);
        }
        let sender_output = bytes[off..off + out_len].to_vec();
        off += out_len;
        let mut sender_state = [0u8; 32];
        sender_state.copy_from_slice(&bytes[off..off + 32]);
        let mut receiver_state = [0u8; 32];
        receiver_state.copy_from_slice(&bytes[off + 32..off + 64]);
        Ok(WrappedMessage {
            command,
            sender_output,
            sender_state,
            receiver_state,
        })
    }
}

/// One endpoint of a transformed CFT system: the node's own state machine plus
/// a *simulated copy* of the peer's state machine used to validate the peer's
/// claimed outputs without replaying the entire history.
#[derive(Debug, Clone)]
pub struct Transformed<S: StateMachine> {
    node: NodeId,
    peer: NodeId,
    state: S,
    simulated_peer: S,
}

impl<S: StateMachine> Transformed<S> {
    /// Creates the wrapper for `node` talking to `peer`; both sides start from
    /// the same initial state (deterministic specification requirement).
    #[must_use]
    pub fn new(node: NodeId, peer: NodeId, initial: S) -> Self {
        Transformed {
            node,
            peer,
            state: initial.clone(),
            simulated_peer: initial,
        }
    }

    /// This node's state machine.
    #[must_use]
    pub fn state(&self) -> &S {
        &self.state
    }

    /// The transformed `send` (Listing 1, lines 1–5): execute locally, wrap
    /// the command with the local state digest and the last known peer state,
    /// and `auth_send` it.
    ///
    /// # Errors
    ///
    /// Propagates attestation and session errors.
    pub fn send(
        &mut self,
        cluster: &mut Cluster,
        command: &[u8],
    ) -> Result<WrappedMessage, CoreError> {
        let sender_output = self.state.execute(command);
        let wrapped = WrappedMessage {
            command: command.to_vec(),
            sender_output,
            sender_state: self.state.state_digest(),
            receiver_state: self.simulated_peer.state_digest(),
        };
        cluster.auth_send(self.node, self.peer, &wrapped.encode())?;
        Ok(wrapped)
    }

    /// The transformed `recv` (Listing 1, lines 7–13): the attestation was
    /// already checked by the TNIC verification path; this wrapper simulates
    /// the sender's execution, checks the claimed output and state, checks the
    /// system view, and only then applies the command locally.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TransformViolation`] if the sender's claimed
    /// output or state diverges from the deterministic specification, or if
    /// the sender's view of this receiver is stale.
    pub fn recv(&mut self, message: &AttestedMessage) -> Result<Vec<u8>, CoreError> {
        let wrapped = WrappedMessage::decode(&message.payload)?;
        // Simulate the sender's action on our copy of its state machine.
        let expected_output = self.simulated_peer.execute(&wrapped.command);
        if expected_output != wrapped.sender_output {
            return Err(CoreError::TransformViolation(
                "sender output diverges from deterministic specification",
            ));
        }
        if self.simulated_peer.state_digest() != wrapped.sender_state {
            return Err(CoreError::TransformViolation(
                "sender state digest does not match simulation",
            ));
        }
        // View check: the sender must have seen our current state.
        if wrapped.receiver_state != self.state.state_digest() {
            return Err(CoreError::TransformViolation(
                "sender operated on a stale view of the receiver",
            ));
        }
        // Apply the command to our own state machine.
        let output = self.state.execute(&wrapped.command);
        // After applying, both replicas are in the same state; keep the
        // simulated peer's view of us in sync for subsequent messages.
        Ok(output)
    }

    /// Records that the peer has applied our latest state (used by senders
    /// after receiving an acknowledgement so the view check stays in sync).
    pub fn observe_peer_caught_up(&mut self) {
        self.simulated_peer = self.state.clone();
    }

    /// The peer this wrapper talks to.
    #[must_use]
    pub fn peer(&self) -> NodeId {
        self.peer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnic_net::stack::NetworkStackKind;
    use tnic_tee::profile::Baseline;

    fn two_node_setup() -> (
        Cluster,
        Transformed<CounterMachine>,
        Transformed<CounterMachine>,
    ) {
        let cluster = Cluster::fully_connected(2, Baseline::Tnic, NetworkStackKind::Tnic, 9);
        let sender = Transformed::new(NodeId(0), NodeId(1), CounterMachine::new());
        let receiver = Transformed::new(NodeId(1), NodeId(0), CounterMachine::new());
        (cluster, sender, receiver)
    }

    #[test]
    fn honest_send_recv_keeps_replicas_in_sync() {
        let (mut cluster, mut sender, mut receiver) = two_node_setup();
        for i in 0..5u8 {
            sender.send(&mut cluster, &[i]).unwrap();
            let delivered = cluster.poll(NodeId(1)).unwrap();
            assert_eq!(delivered.len(), 1);
            receiver.recv(&delivered[0].message).unwrap();
            // The receiver replies / acknowledges out of band; the sender
            // learns the receiver caught up.
            sender.observe_peer_caught_up();
        }
        assert_eq!(sender.state().value(), 5);
        assert_eq!(receiver.state().value(), 5);
        assert_eq!(
            sender.state().state_digest(),
            receiver.state().state_digest()
        );
    }

    #[test]
    fn lying_about_output_is_detected() {
        let (mut cluster, sender, mut receiver) = two_node_setup();
        // The Byzantine sender executes correctly but claims a different output.
        let mut wrapped = WrappedMessage {
            command: b"incr".to_vec(),
            sender_output: b"forged output".to_vec(),
            sender_state: sender.state.state_digest(),
            receiver_state: receiver.state.state_digest(),
        };
        // Keep the digests self-consistent with an honest-looking state.
        let mut lying_state = sender.state.clone();
        let _ = lying_state.execute(b"incr");
        wrapped.sender_state = lying_state.state_digest();
        cluster
            .auth_send(NodeId(0), NodeId(1), &wrapped.encode())
            .unwrap();
        let delivered = cluster.poll(NodeId(1)).unwrap();
        let err = receiver.recv(&delivered[0].message).unwrap_err();
        assert!(matches!(err, CoreError::TransformViolation(_)));
    }

    #[test]
    fn lying_about_state_digest_is_detected() {
        let (mut cluster, sender, mut receiver) = two_node_setup();
        let mut honest = sender.state.clone();
        let output = honest.execute(b"cmd");
        let wrapped = WrappedMessage {
            command: b"cmd".to_vec(),
            sender_output: output,
            sender_state: [0xAB; 32],
            receiver_state: receiver.state.state_digest(),
        };
        cluster
            .auth_send(NodeId(0), NodeId(1), &wrapped.encode())
            .unwrap();
        let delivered = cluster.poll(NodeId(1)).unwrap();
        assert!(receiver.recv(&delivered[0].message).is_err());
    }

    #[test]
    fn stale_view_of_receiver_is_detected() {
        let (mut cluster, mut sender, mut receiver) = two_node_setup();
        // First exchange brings the receiver to state 1.
        sender.send(&mut cluster, b"a").unwrap();
        let d = cluster.poll(NodeId(1)).unwrap();
        receiver.recv(&d[0].message).unwrap();
        // Sender does NOT observe the catch-up and sends with a stale view.
        sender.send(&mut cluster, b"b").unwrap();
        let d = cluster.poll(NodeId(1)).unwrap();
        let err = receiver.recv(&d[0].message).unwrap_err();
        assert!(matches!(err, CoreError::TransformViolation(msg) if msg.contains("stale")));
    }

    #[test]
    fn wrapped_message_round_trip_and_malformed_rejection() {
        let w = WrappedMessage {
            command: b"put k v".to_vec(),
            sender_output: b"ok".to_vec(),
            sender_state: [1u8; 32],
            receiver_state: [2u8; 32],
        };
        let decoded = WrappedMessage::decode(&w.encode()).unwrap();
        assert_eq!(decoded, w);
        assert!(WrappedMessage::decode(&[1, 2, 3]).is_err());
        assert!(WrappedMessage::decode(&w.encode()[..10]).is_err());
    }

    #[test]
    fn counter_machine_is_deterministic() {
        let mut a = CounterMachine::new();
        let mut b = CounterMachine::new();
        for cmd in [b"x".as_slice(), b"y", b"z"] {
            assert_eq!(a.execute(cmd), b.execute(cmd));
        }
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.value(), 3);
        assert_eq!(a.applied(), 3);
    }
}
