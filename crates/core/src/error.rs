//! Error type of the TNIC core library.

use std::error::Error;
use std::fmt;
use tnic_crypto::CryptoError;
use tnic_device::DeviceError;

/// Errors surfaced by the TNIC programming API, the transformation recipe and
/// the remote-attestation protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An error raised by the (simulated) TNIC hardware or a TEE baseline.
    Device(DeviceError),
    /// A cryptographic operation failed.
    Crypto(CryptoError),
    /// The referenced node is not part of the cluster.
    UnknownNode(u32),
    /// No session has been established with the peer.
    NoSession {
        /// The local node.
        from: u32,
        /// The peer node.
        to: u32,
    },
    /// Remote attestation failed at the named step.
    AttestationFailed(&'static str),
    /// The transformation wrapper rejected a message (state divergence,
    /// equivocation attempt or protocol violation).
    TransformViolation(&'static str),
    /// A property lemma was violated on the recorded trace.
    PropertyViolation(String),
    /// The peer is not currently reachable — departed, crash-stopped or cut
    /// off by an open network partition. The send was refused *before* the
    /// attested channel's session counter advanced, so the channel stays
    /// consistent for a later recovery.
    Unreachable {
        /// The sending node.
        from: u32,
        /// The unreachable peer.
        to: u32,
        /// Why the link is down (`"departed"`, `"crashed"`, `"partitioned"`).
        reason: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Device(e) => write!(f, "device error: {e}"),
            CoreError::Crypto(e) => write!(f, "crypto error: {e}"),
            CoreError::UnknownNode(n) => write!(f, "unknown node {n}"),
            CoreError::NoSession { from, to } => {
                write!(
                    f,
                    "no session established between node {from} and node {to}"
                )
            }
            CoreError::AttestationFailed(step) => write!(f, "remote attestation failed: {step}"),
            CoreError::TransformViolation(what) => write!(f, "transformation violation: {what}"),
            CoreError::PropertyViolation(what) => write!(f, "property violation: {what}"),
            CoreError::Unreachable { from, to, reason } => {
                write!(f, "node {to} unreachable from node {from} ({reason})")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Device(e) => Some(e),
            CoreError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for CoreError {
    fn from(e: DeviceError) -> Self {
        CoreError::Device(e)
    }
}

impl From<CryptoError> for CoreError {
    fn from(e: CryptoError) -> Self {
        CoreError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = DeviceError::BadAttestation.into();
        assert!(e.to_string().contains("attestation"));
        let e: CoreError = CryptoError::InvalidSignature.into();
        assert!(e.to_string().contains("crypto"));
        assert!(CoreError::NoSession { from: 1, to: 2 }
            .to_string()
            .contains('2'));
    }

    #[test]
    fn source_chains() {
        let e = CoreError::Device(DeviceError::ArpMiss);
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&CoreError::UnknownNode(3)).is_none());
    }
}
