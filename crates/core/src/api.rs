//! The TNIC programming API (paper §6.1, Table 1).
//!
//! The API mirrors the paper's RDMA-flavoured interface: connections are set
//! up with `ibv_qp_conn`/`alloc_mem`/`init_lqueue`/`ibv_sync` (wrapped here in
//! [`Cluster::connect`]), and the network APIs are `local_send`/`local_verify`,
//! `auth_send`, `poll` and `rem_read`/`rem_write`. A [`Cluster`] owns one
//! [`Endpoint`] per node, the shared virtual clock and the recorded action
//! facts used by the lemma checker.
//!
//! Every message flows through an attestation [`Provider`], so the same
//! application code runs over TNIC hardware or any of the TEE baselines —
//! the paper's §8.3 methodology.

use crate::accountability::SharedAccountability;
use crate::error::CoreError;
use crate::provider::Provider;
use crate::verification::{ActionFact, TraceLog};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use tnic_crypto::ed25519::{Keypair, Signature, VerifyingKey};
use tnic_crypto::sha256::sha256;
use tnic_device::attestation::AttestedMessage;
use tnic_device::dma::DmaRegion;
use tnic_device::roce::packet::{PacketHeader, RdmaOpcode, RocePacket};
use tnic_device::types::{DeviceId, Ipv4Addr, MacAddr, QueuePairId, SessionId};
use tnic_net::adversary::{Adversary, PartitionSchedule};
use tnic_net::stack::NetworkStackKind;
use tnic_sim::clock::SimClock;
use tnic_sim::rng::DetRng;
use tnic_sim::time::{SimDuration, SimInstant};
use tnic_tee::profile::Baseline;

/// Identifier of a logical node (machine) in a TNIC deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl NodeId {
    /// The device identity backing this node.
    #[must_use]
    pub fn device(self) -> DeviceId {
        DeviceId(self.0)
    }
}

/// A message delivered to a node's inbox after successful verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered {
    /// The node whose attestation the message carries.
    pub from: NodeId,
    /// The verified attested message.
    pub message: AttestedMessage,
    /// Virtual time of delivery.
    pub at: SimInstant,
}

/// Per-node state: the attestation provider, client-facing signing key,
/// registered memory and the inbox filled by `auth_send`.
#[derive(Debug)]
pub struct Endpoint {
    node: NodeId,
    provider: Provider,
    signer: Keypair,
    memory: DmaRegion,
    inbox: VecDeque<Delivered>,
}

impl Endpoint {
    /// The node this endpoint belongs to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The attestation provider backing this endpoint.
    #[must_use]
    pub fn provider(&self) -> &Provider {
        &self.provider
    }

    /// Number of messages waiting in the inbox.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.inbox.len()
    }
}

/// Aggregate timing statistics of a cluster run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Messages sent with `auth_send` (including multicast copies).
    pub messages_sent: u64,
    /// Messages rejected at verification.
    pub messages_rejected: u64,
    /// Remote reads/writes executed.
    pub remote_ops: u64,
    /// Sends refused because an endpoint had departed or crashed. Before
    /// membership tracking these were silent losses; now every one is
    /// counted, traced (net-drop with a reason) and surfaced as
    /// [`CoreError::Unreachable`] *before* the attested channel's session
    /// counter advances.
    pub messages_unreachable: u64,
    /// Sends refused because an open [`PartitionSchedule`] cut separated the
    /// endpoints (healing restores the link with counters intact).
    pub messages_partitioned: u64,
    /// Audit wire messages (challenges/responses and their batched forms)
    /// among `messages_sent`, reported by the accountability driver via
    /// [`Cluster::note_audit_message`] — the control-plane slice the sampled
    /// audit path is designed to shrink.
    pub messages_audit: u64,
    /// Wire messages *saved* by challenge/response batching: individual
    /// challenges/responses that travelled coalesced inside a batch envelope
    /// instead of as their own message (also via
    /// [`Cluster::note_audit_message`]).
    pub messages_batched: u64,
}

/// A set of TNIC nodes wired together over a (modelled) network stack.
pub struct Cluster {
    baseline: Baseline,
    stack: NetworkStackKind,
    clock: SimClock,
    rng: DetRng,
    endpoints: BTreeMap<NodeId, Endpoint>,
    sessions: HashMap<(NodeId, NodeId), SessionId>,
    group_sessions: HashMap<NodeId, SessionId>,
    local_sessions: HashMap<NodeId, SessionId>,
    client_keys: HashMap<NodeId, VerifyingKey>,
    next_session: u32,
    trace: TraceLog,
    stats: ClusterStats,
    accountability: Option<SharedAccountability>,
    adversary: Option<(Adversary, DetRng)>,
    /// Nodes currently unreachable (departed or crash-stopped), with the
    /// drop-reason label surfaced in errors, stats and trace events.
    unreachable: BTreeMap<NodeId, &'static str>,
    /// An installed healing-partition schedule, if any.
    partition: Option<PartitionSchedule>,
    /// The round the partition schedule is evaluated against (advanced by
    /// the protocol driver via [`Cluster::set_partition_round`]).
    partition_round: u64,
    /// Nodes with a non-empty inbox — the event-driven scheduler's active
    /// set, so a drain pass visits O(pending) nodes instead of scanning all
    /// n (maintained by `deliver`/`poll`).
    pending_nodes: BTreeSet<NodeId>,
    /// Establish pairwise sessions on first send instead of eagerly at
    /// construction ([`Cluster::sparse`]): an n = 1000 cluster would
    /// otherwise pay ~n²/2 key exchanges up front, while sharded witness
    /// sets only ever use O(n·w) links.
    lazy_connect: bool,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("baseline", &self.baseline)
            .field("stack", &self.stack)
            .field("nodes", &self.endpoints.len())
            .field("sessions", &self.sessions.len())
            .finish()
    }
}

impl Cluster {
    /// Creates an empty cluster whose attestations are produced by `baseline`
    /// and whose messages travel over `stack`.
    #[must_use]
    pub fn new(baseline: Baseline, stack: NetworkStackKind, seed: u64) -> Self {
        Cluster {
            baseline,
            stack,
            clock: SimClock::new(),
            rng: DetRng::new(seed),
            endpoints: BTreeMap::new(),
            sessions: HashMap::new(),
            group_sessions: HashMap::new(),
            local_sessions: HashMap::new(),
            client_keys: HashMap::new(),
            next_session: 1,
            trace: TraceLog::new(),
            stats: ClusterStats::default(),
            accountability: None,
            adversary: None,
            unreachable: BTreeMap::new(),
            partition: None,
            partition_round: 0,
            pending_nodes: BTreeSet::new(),
            lazy_connect: false,
        }
    }

    /// A cluster of `n` nodes (ids 0..n), fully connected.
    #[must_use]
    pub fn fully_connected(n: u32, baseline: Baseline, stack: NetworkStackKind, seed: u64) -> Self {
        let mut cluster = Cluster::new(baseline, stack, seed);
        for i in 0..n {
            cluster.add_node(NodeId(i));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                cluster.connect(NodeId(i), NodeId(j)).expect("nodes exist");
            }
        }
        cluster
    }

    /// A cluster of `n` nodes (ids 0..n) with *lazy* pairwise sessions:
    /// links are established on first `auth_send` instead of all n²/2 up
    /// front. Behaviour on every link actually used is identical to
    /// [`Cluster::fully_connected`] (same key-exchange procedure, run on
    /// demand); only the session-establishment order — and therefore which
    /// links exist at all — differs. This is the constructor for large-n
    /// sharded-audit runs, where each node ever talks to O(w) peers.
    #[must_use]
    pub fn sparse(n: u32, baseline: Baseline, stack: NetworkStackKind, seed: u64) -> Self {
        let mut cluster = Cluster::new(baseline, stack, seed);
        for i in 0..n {
            cluster.add_node(NodeId(i));
        }
        cluster.lazy_connect = true;
        cluster
    }

    /// The attestation baseline in use.
    #[must_use]
    pub fn baseline(&self) -> Baseline {
        self.baseline
    }

    /// The network stack model in use.
    #[must_use]
    pub fn stack(&self) -> NetworkStackKind {
        self.stack
    }

    /// The shared virtual clock.
    #[must_use]
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }

    /// The node ids currently in the cluster.
    #[must_use]
    pub fn nodes(&self) -> Vec<NodeId> {
        self.endpoints.keys().copied().collect()
    }

    /// The recorded action-fact trace (input to the lemma checker).
    #[must_use]
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Attaches an accountability layer that observes every attested send and
    /// every verified delivery (see [`crate::accountability`]). At most one
    /// layer is attached at a time; attaching replaces the previous one.
    pub fn attach_accountability(&mut self, layer: SharedAccountability) {
        self.accountability = Some(layer);
    }

    /// Detaches and returns the current accountability layer, if any.
    pub fn detach_accountability(&mut self) -> Option<SharedAccountability> {
        self.accountability.take()
    }

    /// Installs a packet-level network [`Adversary`] on the delivery path:
    /// every message sent with [`Cluster::auth_send`] or
    /// [`Cluster::multicast`] is framed as a RoCE packet and run through the
    /// adversary before delivery.
    ///
    /// The attested channel sits *above* the RoCE transport, whose go-back-N
    /// recovery retransmits lost or corrupted packets (the attestation
    /// kernel's strict receive counters assume a lossless, ordered stream —
    /// that is exactly what non-equivocation requires). The adversary
    /// therefore costs **retransmission latency** and rejected packets
    /// (tampered payloads fail the MAC, replayed duplicates fail the
    /// counter check; both land in [`ClusterStats::messages_rejected`]), but
    /// never silently loses an attested message. Used to compose node-level
    /// fault plans with a lossy/hostile network and show the accountability
    /// classification is stable under it.
    pub fn set_adversary(&mut self, adversary: Adversary, seed: u64) {
        self.adversary = Some((adversary, DetRng::new(seed)));
    }

    /// Removes the installed packet-level adversary, if any.
    pub fn clear_adversary(&mut self) -> Option<Adversary> {
        self.adversary.take().map(|(a, _)| a)
    }

    /// Marks `node` unreachable (departed or crash-stopped): every later
    /// send touching it is refused with [`CoreError::Unreachable`] — counted
    /// and traced, never silently lost — *before* the attested channel's
    /// session counter advances, so the channel survives a recovery intact.
    /// `reason` is the drop label (`"departed"` or `"crashed"`).
    pub fn mark_unreachable(&mut self, node: NodeId, reason: &'static str) {
        self.unreachable.insert(node, reason);
    }

    /// Restores reachability of a crash-recovered node.
    pub fn mark_reachable(&mut self, node: NodeId) {
        self.unreachable.remove(&node);
    }

    /// Whether `node` is currently reachable (known and not down).
    #[must_use]
    pub fn is_reachable(&self, node: NodeId) -> bool {
        self.endpoints.contains_key(&node) && !self.unreachable.contains_key(&node)
    }

    /// Installs a healing-partition schedule (see [`PartitionSchedule`]);
    /// the cut is evaluated against the round set by
    /// [`Cluster::set_partition_round`].
    pub fn set_partition(&mut self, schedule: PartitionSchedule) {
        self.partition = Some(schedule);
    }

    /// Removes the installed partition schedule, if any.
    pub fn clear_partition(&mut self) -> Option<PartitionSchedule> {
        self.partition.take()
    }

    /// Advances the round the partition schedule is evaluated against,
    /// emitting a partition open/heal trace event on the transition.
    pub fn set_partition_round(&mut self, round: u64) {
        let Some(schedule) = &self.partition else {
            self.partition_round = round;
            return;
        };
        let was_active = schedule.active(self.partition_round);
        let now_active = schedule.active(round);
        if was_active != now_active {
            tnic_obs::trace_event!(
                tnic_obs::EventKind::Partition,
                at_us: self.clock.now().as_micros(),
                seq: schedule.group.len() as u64,
                round: round,
                aux: if now_active {
                    tnic_obs::codes::PARTITION_OPEN
                } else {
                    tnic_obs::codes::PARTITION_HEAL
                }
            );
        }
        self.partition_round = round;
    }

    /// Why the link `from → to` is down right now, if it is: an unreachable
    /// endpoint's reason label, or `"partitioned"` under an open cut.
    #[must_use]
    pub fn link_blocked(&self, from: NodeId, to: NodeId) -> Option<&'static str> {
        if let Some(&reason) = self
            .unreachable
            .get(&to)
            .or_else(|| self.unreachable.get(&from))
        {
            return Some(reason);
        }
        if let Some(schedule) = &self.partition {
            if schedule.cuts(self.partition_round, from.0, to.0) {
                return Some("partitioned");
            }
        }
        None
    }

    /// Refuses a send over a down link: counts the drop, emits the net-drop
    /// trace event with its reason code, and returns
    /// [`CoreError::Unreachable`].
    fn refuse_blocked_send(&mut self, from: NodeId, to: NodeId, reason: &'static str) -> CoreError {
        let code = match reason {
            "departed" => tnic_obs::codes::DROP_DEPARTED,
            "crashed" => tnic_obs::codes::DROP_CRASHED,
            _ => tnic_obs::codes::DROP_PARTITIONED,
        };
        if code == tnic_obs::codes::DROP_PARTITIONED {
            self.stats.messages_partitioned += 1;
        } else {
            self.stats.messages_unreachable += 1;
        }
        tnic_obs::trace_event!(
            tnic_obs::EventKind::NetDrop,
            at_us: self.clock.now().as_micros(),
            node: to.0,
            peer: from.0,
            round: self.partition_round,
            aux: code
        );
        CoreError::Unreachable {
            from: from.0,
            to: to.0,
            reason,
        }
    }

    /// The attached accountability layer, if any.
    #[must_use]
    pub fn accountability(&self) -> Option<&SharedAccountability> {
        self.accountability.as_ref()
    }

    /// Adds a node with a fresh endpoint.
    pub fn add_node(&mut self, node: NodeId) {
        let seed = self.rng.next_u64();
        let mut signer_seed = [0u8; 32];
        signer_seed[..8].copy_from_slice(&seed.to_le_bytes());
        signer_seed[8..12].copy_from_slice(&node.0.to_le_bytes());
        let signer = Keypair::from_seed(&signer_seed);
        self.client_keys.insert(node, signer.verifying);
        self.endpoints.insert(
            node,
            Endpoint {
                node,
                provider: Provider::new(self.baseline, node.device(), seed),
                signer,
                memory: DmaRegion::new(1 << 20),
                inbox: VecDeque::new(),
            },
        );
    }

    fn endpoint_mut(&mut self, node: NodeId) -> Result<&mut Endpoint, CoreError> {
        self.endpoints
            .get_mut(&node)
            .ok_or(CoreError::UnknownNode(node.0))
    }

    fn endpoint(&self, node: NodeId) -> Result<&Endpoint, CoreError> {
        self.endpoints
            .get(&node)
            .ok_or(CoreError::UnknownNode(node.0))
    }

    fn fresh_session(&mut self) -> SessionId {
        let id = SessionId(self.next_session);
        self.next_session += 1;
        id
    }

    /// Establishes a connection between `a` and `b`: the ibv handshake
    /// (`ibv_qp_conn`, `alloc_mem`, `init_lqueue`, `ibv_sync`) plus the
    /// installation of the shared session key on both devices (done by the
    /// system designer / attestation protocol, never by untrusted software).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if either node does not exist.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> Result<SessionId, CoreError> {
        if !self.endpoints.contains_key(&a) {
            return Err(CoreError::UnknownNode(a.0));
        }
        if !self.endpoints.contains_key(&b) {
            return Err(CoreError::UnknownNode(b.0));
        }
        let session = self.fresh_session();
        let key = self.rng.bytes32();
        self.endpoint_mut(a)?
            .provider
            .install_session_key(session, key);
        self.endpoint_mut(b)?
            .provider
            .install_session_key(session, key);
        self.sessions.insert((a, b), session);
        self.sessions.insert((b, a), session);
        Ok(session)
    }

    /// Establishes a one-to-many group session rooted at `sender` (used for
    /// the equivocation-free multicast of §6.1/§8.2: the same attested message
    /// is unicast to every member).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if any node does not exist.
    pub fn establish_group(
        &mut self,
        sender: NodeId,
        receivers: &[NodeId],
    ) -> Result<SessionId, CoreError> {
        let session = self.fresh_session();
        let key = self.rng.bytes32();
        self.endpoint_mut(sender)?
            .provider
            .install_session_key(session, key);
        for &receiver in receivers {
            self.endpoint_mut(receiver)?
                .provider
                .install_session_key(session, key);
        }
        self.group_sessions.insert(sender, session);
        Ok(session)
    }

    /// Establishes a node-local session used by `local_send`/`local_verify`
    /// (single-node use cases such as the A2M log).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] if the node does not exist.
    pub fn establish_local(&mut self, node: NodeId) -> Result<SessionId, CoreError> {
        if let Some(existing) = self.local_sessions.get(&node) {
            return Ok(*existing);
        }
        let session = self.fresh_session();
        let key = self.rng.bytes32();
        self.endpoint_mut(node)?
            .provider
            .install_session_key(session, key);
        self.local_sessions.insert(node, session);
        Ok(session)
    }

    /// The session shared by `a` and `b`, if connected.
    #[must_use]
    pub fn session_between(&self, a: NodeId, b: NodeId) -> Option<SessionId> {
        self.sessions.get(&(a, b)).copied()
    }

    /// The group session rooted at `sender`, if established.
    #[must_use]
    pub fn group_session(&self, sender: NodeId) -> Option<SessionId> {
        self.group_sessions.get(&sender).copied()
    }

    fn notify_sent(&mut self, from: NodeId, to: NodeId, msg: &AttestedMessage) {
        if let Some(layer) = &self.accountability {
            layer.borrow_mut().on_sent(from, to, msg, self.clock.now());
        }
    }

    fn record_sent(&mut self, node: NodeId, msg: &AttestedMessage) {
        let at = self.clock.now();
        self.trace.record(
            at,
            ActionFact::Sent {
                endpoint: node.device(),
                session: msg.session,
                counter: msg.counter,
                digest: sha256(&msg.payload),
            },
        );
    }

    fn record_accepted(&mut self, node: NodeId, msg: &AttestedMessage) {
        let at = self.clock.now();
        self.trace.record(
            at,
            ActionFact::Accepted {
                endpoint: node.device(),
                session: msg.session,
                sender: msg.device,
                counter: msg.counter,
                digest: sha256(&msg.payload),
            },
        );
    }

    /// `local_send()`: generates an attested message bound to `node`'s local
    /// session without transmitting it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSession`] if [`Cluster::establish_local`] was not
    /// called, or a device error.
    pub fn local_send(
        &mut self,
        node: NodeId,
        payload: &[u8],
    ) -> Result<AttestedMessage, CoreError> {
        let session = self
            .local_sessions
            .get(&node)
            .copied()
            .ok_or(CoreError::NoSession {
                from: node.0,
                to: node.0,
            })?;
        let endpoint = self.endpoint_mut(node)?;
        let (msg, cost) = endpoint.provider.attest(session, payload)?;
        self.clock.advance(cost);
        self.record_sent(node, &msg);
        Ok(msg)
    }

    /// `local_verify()`: verifies the binding of a locally generated attested
    /// message (out-of-order verification allowed).
    ///
    /// # Errors
    ///
    /// Returns a device error if the attestation does not verify.
    pub fn local_verify(
        &mut self,
        node: NodeId,
        message: &AttestedMessage,
    ) -> Result<(), CoreError> {
        let endpoint = self.endpoint_mut(node)?;
        let cost = endpoint.provider.verify_binding(message)?;
        self.clock.advance(cost);
        Ok(())
    }

    fn network_latency(&mut self, payload_len: usize) -> SimDuration {
        // One-way latency of the configured stack for this message size, with
        // a little jitter so runs are not perfectly deterministic in time.
        let base = self.stack.send_latency(payload_len);
        let jitter = self.rng.range(0, 1 + base.as_nanos() / 20);
        base + SimDuration::from_nanos(jitter)
    }

    /// `auth_send()`: attests `payload` at `from`, ships it over the network
    /// stack and verifies it at `to`; on success the message lands in `to`'s
    /// inbox (to be fetched with [`Cluster::poll`]).
    ///
    /// If an accountability layer is attached, the payload is first offered to
    /// [`AccountabilityLayer::wrap_outbound`](crate::accountability::AccountabilityLayer::wrap_outbound)
    /// so pending control data (e.g. PeerReview log commitments) can piggyback
    /// on application traffic instead of costing dedicated messages.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSession`] if the nodes are not connected, or the
    /// verification error if the receiver rejects the message.
    pub fn auth_send(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload: &[u8],
    ) -> Result<AttestedMessage, CoreError> {
        // Churn/partition drops happen here, before the session counter
        // advances: the attested channel's strict receive counters cannot
        // tolerate a delivery gap, so a blocked link must refuse the send
        // rather than lose an attested message.
        if let Some(reason) = self.link_blocked(from, to) {
            return Err(self.refuse_blocked_send(from, to, reason));
        }
        let session = match self.sessions.get(&(from, to)).copied() {
            Some(session) => session,
            // Lazy-session mode: establish the link on first use, exactly as
            // `connect` would have at construction time.
            None if self.lazy_connect
                && self.endpoints.contains_key(&from)
                && self.endpoints.contains_key(&to) =>
            {
                self.connect(from, to)?
            }
            None => {
                return Err(CoreError::NoSession {
                    from: from.0,
                    to: to.0,
                })
            }
        };
        let wrapped = self
            .accountability
            .as_ref()
            .and_then(|layer| layer.borrow_mut().wrap_outbound(from, to, payload));
        let payload = wrapped.as_deref().unwrap_or(payload);
        let (msg, attest_cost) = self.endpoint_mut(from)?.provider.attest(session, payload)?;
        self.clock.advance(attest_cost);
        self.record_sent(from, &msg);
        self.notify_sent(from, to, &msg);
        self.stats.messages_sent += 1;
        // The (sender, attestation counter) pair recorded as (node, seq) is
        // the message's cross-node trace identity: the matching Recv event on
        // the receiver carries the same counter, so trace assembly joins the
        // two into one causal edge without any extra wire field (see
        // `tnic_obs::assemble::trace_id`).
        tnic_obs::trace_event!(
            tnic_obs::EventKind::Send,
            at_us: self.clock.now().as_micros(),
            node: from.0,
            peer: to.0,
            seq: msg.counter,
            aux: msg.payload.len() as u64
        );
        let latency = self.network_latency(msg.wire_len());
        self.clock.advance(latency);
        if self.adversary.is_some() {
            self.deliver_via_adversary(from, to, &msg)?;
        } else {
            self.deliver(from, to, msg.clone())?;
        }
        Ok(msg)
    }

    /// Frames `msg` as a RoCE packet, runs it through the installed
    /// [`Adversary`] and delivers it through the transport's loss recovery:
    /// every attempt the adversary drops or corrupts costs one
    /// retransmission round trip (go-back-N), then the packet is offered
    /// again. Duplicates and tampered copies that do reach the receiver are
    /// rejected by the verification path and counted; the message itself is
    /// always eventually delivered — a Byzantine network degrades latency,
    /// never the attested channel's lossless ordering.
    fn deliver_via_adversary(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: &AttestedMessage,
    ) -> Result<(), CoreError> {
        // Retransmission bound: keeps the simulation finite against an
        // adversary that censors every attempt (e.g. drop probability 1.0);
        // the final attempt bypasses it, modelling the out-of-band recovery
        // a production transport escalates to.
        const MAX_RETRANSMITS: u32 = 16;
        let packet = RocePacket {
            header: PacketHeader {
                src_mac: MacAddr::from_device(from.device()),
                dst_mac: MacAddr::from_device(to.device()),
                src_ip: Ipv4Addr::from_device(from.device()),
                dst_ip: Ipv4Addr::from_device(to.device()),
                udp_port: 4791,
                opcode: RdmaOpcode::Write,
                qp: QueuePairId(to.0),
                psn: msg.counter as u32,
                msn: msg.counter as u32,
                ack_psn: 0,
            },
            payload: msg.encode(),
        };
        for _ in 0..MAX_RETRANSMITS {
            let surviving = {
                let (adversary, rng) = self.adversary.as_mut().expect("adversary installed");
                adversary.apply(&packet, rng)
            };
            let mut delivered = false;
            for packet in surviving {
                match AttestedMessage::decode(&packet.payload) {
                    Ok(received) => {
                        // Rejections (tampered MAC, duplicate or stale
                        // counter) are counted inside `deliver` and trigger
                        // a retransmission, not a sender-side error.
                        if self.deliver(from, to, received).is_ok() {
                            delivered = true;
                        }
                    }
                    Err(_) => self.stats.messages_rejected += 1,
                }
            }
            if delivered {
                return Ok(());
            }
            // Timeout + retransmission: one extra network traversal.
            let latency = self.network_latency(msg.wire_len());
            self.clock.advance(latency);
        }
        self.deliver(from, to, msg.clone())
    }

    /// Delivers an already-attested message to `to`, verifying it there. Used
    /// for forwarding (transferable authentication) and by adversarial tests
    /// that inject tampered or replayed messages.
    ///
    /// # Errors
    ///
    /// Returns the verification error if the receiver rejects the message.
    pub fn deliver(
        &mut self,
        from: NodeId,
        to: NodeId,
        message: AttestedMessage,
    ) -> Result<(), CoreError> {
        // The wire hop: the message reached the receiver's NIC (network
        // latency already charged by the sender path). The subsequent Recv
        // event records the verification outcome; this one records arrival,
        // mirroring the fabric-level NetDeliver on the same trace identity.
        tnic_obs::trace_event!(
            tnic_obs::EventKind::NetDeliver,
            at_us: self.clock.now().as_micros(),
            node: to.0,
            peer: from.0,
            seq: message.counter,
            aux: message.payload.len() as u64
        );
        let verify_result = {
            let endpoint = self.endpoint_mut(to)?;
            endpoint.provider.verify(&message)
        };
        match verify_result {
            Ok(cost) => {
                self.clock.advance(cost);
                self.record_accepted(to, &message);
                let at = self.clock.now();
                tnic_obs::trace_event!(
                    tnic_obs::EventKind::Recv,
                    at_us: at.as_micros(),
                    node: to.0,
                    peer: from.0,
                    seq: message.counter,
                    aux: 0
                );
                let delivered = Delivered { from, message, at };
                if let Some(layer) = &self.accountability {
                    layer.borrow_mut().on_delivered(to, &delivered);
                }
                self.endpoint_mut(to)?.inbox.push_back(delivered);
                self.pending_nodes.insert(to);
                Ok(())
            }
            Err(e) => {
                self.stats.messages_rejected += 1;
                tnic_obs::trace_event!(
                    tnic_obs::EventKind::Recv,
                    at_us: self.clock.now().as_micros(),
                    node: to.0,
                    peer: from.0,
                    seq: message.counter,
                    aux: 1
                );
                Err(e.into())
            }
        }
    }

    /// Equivocation-free multicast (§6.1): the same attested message generated
    /// on the sender's group session is unicast to every receiver.
    ///
    /// If an accountability layer is attached, the payload is offered *once*
    /// to
    /// [`AccountabilityLayer::wrap_multicast`](crate::accountability::AccountabilityLayer::wrap_multicast)
    /// before attestation — the identical wrapped bytes reach every receiver,
    /// so the single-attestation property is preserved while pending control
    /// data (e.g. log commitments) rides the group traffic.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSession`] if no group session exists, or the
    /// first verification error encountered.
    pub fn multicast(
        &mut self,
        from: NodeId,
        receivers: &[NodeId],
        payload: &[u8],
    ) -> Result<AttestedMessage, CoreError> {
        // Same pre-attestation discipline as `auth_send`: a multicast with
        // any blocked leg is refused whole before the group counter moves.
        for &to in std::iter::once(&from).chain(receivers) {
            if let Some(reason) = self.link_blocked(from, to) {
                return Err(self.refuse_blocked_send(from, to, reason));
            }
        }
        let session = self
            .group_sessions
            .get(&from)
            .copied()
            .ok_or(CoreError::NoSession {
                from: from.0,
                to: from.0,
            })?;
        let wrapped = self
            .accountability
            .as_ref()
            .and_then(|layer| layer.borrow_mut().wrap_multicast(from, receivers, payload));
        let payload = wrapped.as_deref().unwrap_or(payload);
        let (msg, attest_cost) = self.endpoint_mut(from)?.provider.attest(session, payload)?;
        self.clock.advance(attest_cost);
        self.record_sent(from, &msg);
        for &to in receivers {
            self.notify_sent(from, to, &msg);
            self.stats.messages_sent += 1;
            tnic_obs::trace_event!(
                tnic_obs::EventKind::Send,
                at_us: self.clock.now().as_micros(),
                node: from.0,
                peer: to.0,
                seq: msg.counter,
                aux: msg.payload.len() as u64
            );
            let latency = self.network_latency(msg.wire_len());
            self.clock.advance(latency);
            if self.adversary.is_some() {
                self.deliver_via_adversary(from, to, &msg)?;
            } else {
                self.deliver(from, to, msg.clone())?;
            }
        }
        Ok(msg)
    }

    /// Verifies a forwarded attested message at `node` without consuming a
    /// receive counter (transferable authentication for third parties).
    ///
    /// # Errors
    ///
    /// Returns the verification error on MAC mismatch.
    pub fn verify_forwarded(
        &mut self,
        node: NodeId,
        message: &AttestedMessage,
    ) -> Result<(), CoreError> {
        let endpoint = self.endpoint_mut(node)?;
        let cost = endpoint.provider.verify_binding(message)?;
        self.clock.advance(cost);
        Ok(())
    }

    /// `poll()`: drains `node`'s inbox of verified messages.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for unknown nodes.
    pub fn poll(&mut self, node: NodeId) -> Result<Vec<Delivered>, CoreError> {
        let endpoint = self.endpoint_mut(node)?;
        let drained: Vec<Delivered> = endpoint.inbox.drain(..).collect();
        self.pending_nodes.remove(&node);
        Ok(drained)
    }

    /// The nodes with at least one undrained inbox message, in id order —
    /// the event-driven scheduler's active set. Maintained incrementally by
    /// `deliver`/`poll`, so reading it is O(pending), not O(n).
    #[must_use]
    pub fn nodes_with_pending(&self) -> Vec<NodeId> {
        self.pending_nodes.iter().copied().collect()
    }

    /// Attributes the most recent sends to the audit plane: `wire_messages`
    /// audit envelopes just went over the wire carrying `elements`
    /// individual challenges/responses (`elements > wire_messages` when
    /// batching coalesced some). Called by the accountability driver; feeds
    /// the `messages_audit` / `messages_batched` breakdown in
    /// [`ClusterStats`].
    pub fn note_audit_message(&mut self, wire_messages: u64, elements: u64) {
        self.stats.messages_audit += wire_messages;
        self.stats.messages_batched += elements.saturating_sub(wire_messages);
    }

    /// `rem_write()`: writes into the remote node's registered memory over an
    /// attested one-sided operation.
    ///
    /// # Errors
    ///
    /// Propagates session, verification and bounds errors.
    pub fn rem_write(
        &mut self,
        from: NodeId,
        to: NodeId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), CoreError> {
        let mut payload = Vec::with_capacity(8 + data.len());
        payload.extend_from_slice(&(offset as u64).to_le_bytes());
        payload.extend_from_slice(data);
        self.auth_send(from, to, &payload)?;
        // Consume the delivered message and apply the write. Under an
        // installed adversary the packet may have been lost in transit.
        let delivered =
            self.endpoint_mut(to)?
                .inbox
                .pop_back()
                .ok_or(CoreError::TransformViolation(
                    "remote write lost in transit",
                ))?;
        let body = &delivered.message.payload[8..];
        self.endpoint_mut(to)?
            .memory
            .write(offset, body)
            .map_err(CoreError::Device)?;
        self.stats.remote_ops += 1;
        Ok(())
    }

    /// `rem_read()`: reads from the remote node's registered memory.
    ///
    /// # Errors
    ///
    /// Propagates session and bounds errors.
    pub fn rem_read(
        &mut self,
        from: NodeId,
        to: NodeId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, CoreError> {
        // The read request travels attested; the response is a DMA from the
        // target's registered memory.
        let mut payload = [0u8; 16];
        payload[..8].copy_from_slice(&(offset as u64).to_le_bytes());
        payload[8..].copy_from_slice(&(len as u64).to_le_bytes());
        self.auth_send(from, to, &payload)?;
        let _ = self.endpoint_mut(to)?.inbox.pop_back();
        let data = self
            .endpoint(to)?
            .memory
            .read(offset, len)
            .map_err(CoreError::Device)?;
        let latency = self.network_latency(data.len());
        self.clock.advance(latency);
        self.stats.remote_ops += 1;
        Ok(data)
    }

    /// Writes directly into a node's own registered memory (host access).
    ///
    /// # Errors
    ///
    /// Propagates bounds errors.
    pub fn write_local_memory(
        &mut self,
        node: NodeId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), CoreError> {
        self.endpoint_mut(node)?
            .memory
            .write(offset, data)
            .map_err(CoreError::Device)
    }

    /// Signs `payload` with `node`'s client-facing key (Appendix C.1: replies
    /// to Byzantine clients are signed because clients cannot hold the shared
    /// session keys).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for unknown nodes.
    pub fn sign_reply(&mut self, node: NodeId, payload: &[u8]) -> Result<Signature, CoreError> {
        let endpoint = self.endpoint(node)?;
        Ok(endpoint.signer.signing.sign(payload))
    }

    /// Verifies a client-facing signature produced by `node`.
    #[must_use]
    pub fn verify_reply(&self, node: NodeId, payload: &[u8], signature: &Signature) -> bool {
        self.client_keys
            .get(&node)
            .map(|key| key.verify(payload, signature).is_ok())
            .unwrap_or(false)
    }

    /// Access to a node's endpoint (read-only).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownNode`] for unknown nodes.
    pub fn endpoint_of(&self, node: NodeId) -> Result<&Endpoint, CoreError> {
        self.endpoint(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verification::TraceChecker;
    use tnic_device::error::DeviceError;

    fn cluster(n: u32) -> Cluster {
        Cluster::fully_connected(n, Baseline::Tnic, NetworkStackKind::Tnic, 42)
    }

    #[test]
    fn auth_send_delivers_verified_messages() {
        let mut c = cluster(2);
        c.auth_send(NodeId(0), NodeId(1), b"hello").unwrap();
        c.auth_send(NodeId(0), NodeId(1), b"world").unwrap();
        let delivered = c.poll(NodeId(1)).unwrap();
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[0].message.payload, b"hello");
        assert_eq!(delivered[1].message.payload, b"world");
        assert_eq!(delivered[0].from, NodeId(0));
        assert!(c.now() > SimInstant::EPOCH, "time advances");
    }

    #[test]
    fn trace_of_honest_run_satisfies_lemmas() {
        let mut c = cluster(3);
        for i in 0..5 {
            c.auth_send(NodeId(0), NodeId(1), format!("m{i}").as_bytes())
                .unwrap();
            c.auth_send(NodeId(1), NodeId(2), format!("f{i}").as_bytes())
                .unwrap();
        }
        let report = TraceChecker::check(c.trace());
        assert!(report.holds(), "{:?}", report.violations);
        assert_eq!(report.sends, 10);
        assert_eq!(report.accepts, 10);
    }

    #[test]
    fn replayed_message_rejected_and_not_double_delivered() {
        let mut c = cluster(2);
        let msg = c.auth_send(NodeId(0), NodeId(1), b"pay").unwrap();
        let err = c.deliver(NodeId(0), NodeId(1), msg).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Device(DeviceError::CounterMismatch { .. })
        ));
        assert_eq!(c.poll(NodeId(1)).unwrap().len(), 1);
        assert_eq!(c.stats().messages_rejected, 1);
        assert!(TraceChecker::check(c.trace()).holds());
    }

    #[test]
    fn tampered_message_rejected() {
        let mut c = cluster(2);
        let mut msg = c.auth_send(NodeId(0), NodeId(1), b"a").unwrap();
        let _ = c.poll(NodeId(1)).unwrap();
        msg.payload = b"b".to_vec();
        msg.counter = 1;
        assert!(matches!(
            c.deliver(NodeId(0), NodeId(1), msg),
            Err(CoreError::Device(DeviceError::BadAttestation))
        ));
    }

    #[test]
    fn blocked_sends_are_counted_not_silently_lost() {
        let mut c = cluster(3);
        c.auth_send(NodeId(0), NodeId(1), b"before").unwrap();
        c.mark_unreachable(NodeId(1), "crashed");
        assert!(!c.is_reachable(NodeId(1)));
        let err = c.auth_send(NodeId(0), NodeId(1), b"lost").unwrap_err();
        assert!(matches!(
            err,
            CoreError::Unreachable {
                from: 0,
                to: 1,
                reason: "crashed"
            }
        ));
        // A crashed node cannot send either.
        assert!(c.auth_send(NodeId(1), NodeId(2), b"up").is_err());
        assert_eq!(c.stats().messages_unreachable, 2);
        assert_eq!(c.stats().messages_partitioned, 0);
        // Recovery restores the channel with counters intact.
        c.mark_reachable(NodeId(1));
        assert!(c.is_reachable(NodeId(1)));
        c.auth_send(NodeId(0), NodeId(1), b"after").unwrap();
        let delivered = c.poll(NodeId(1)).unwrap();
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[1].message.payload, b"after");
        assert!(TraceChecker::check(c.trace()).holds());
    }

    #[test]
    fn partition_schedule_cuts_and_heals_links() {
        let mut c = cluster(3);
        c.set_partition(PartitionSchedule::new([2], 1, 3));
        c.auth_send(NodeId(0), NodeId(2), b"r0").unwrap();
        c.set_partition_round(1);
        let err = c.auth_send(NodeId(0), NodeId(2), b"cut").unwrap_err();
        assert!(matches!(
            err,
            CoreError::Unreachable {
                reason: "partitioned",
                ..
            }
        ));
        // Links inside the majority side stay up.
        c.auth_send(NodeId(0), NodeId(1), b"same-side").unwrap();
        c.set_partition_round(3);
        c.auth_send(NodeId(0), NodeId(2), b"healed").unwrap();
        assert_eq!(c.stats().messages_partitioned, 1);
        assert_eq!(c.poll(NodeId(2)).unwrap().len(), 2);
    }

    #[test]
    fn multicast_delivers_same_counter_to_all() {
        let mut c = cluster(3);
        c.establish_group(NodeId(0), &[NodeId(1), NodeId(2)])
            .unwrap();
        let msg = c
            .multicast(NodeId(0), &[NodeId(1), NodeId(2)], b"bcast")
            .unwrap();
        assert_eq!(msg.counter, 0);
        for node in [NodeId(1), NodeId(2)] {
            let delivered = c.poll(node).unwrap();
            assert_eq!(delivered.len(), 1);
            assert_eq!(delivered[0].message.counter, 0);
            assert_eq!(delivered[0].message.payload, b"bcast");
        }
        assert!(TraceChecker::check(c.trace()).holds());
    }

    #[test]
    fn forwarded_message_verifies_via_binding() {
        let mut c = cluster(3);
        c.establish_group(NodeId(0), &[NodeId(1), NodeId(2)])
            .unwrap();
        let msg = c.multicast(NodeId(0), &[NodeId(1)], b"to-forward").unwrap();
        // Node 2 never received it directly but can verify the forwarded copy.
        c.verify_forwarded(NodeId(2), &msg).unwrap();
    }

    #[test]
    fn local_send_verify_for_logs() {
        let mut c = cluster(1);
        c.establish_local(NodeId(0)).unwrap();
        let e0 = c.local_send(NodeId(0), b"entry 0").unwrap();
        let e1 = c.local_send(NodeId(0), b"entry 1").unwrap();
        assert_eq!(e0.counter, 0);
        assert_eq!(e1.counter, 1);
        c.local_verify(NodeId(0), &e1).unwrap();
        c.local_verify(NodeId(0), &e0).unwrap();
    }

    #[test]
    fn rem_write_and_read_round_trip() {
        let mut c = cluster(2);
        c.rem_write(NodeId(0), NodeId(1), 64, b"remote value")
            .unwrap();
        let data = c.rem_read(NodeId(0), NodeId(1), 64, 12).unwrap();
        assert_eq!(data, b"remote value");
        assert_eq!(c.stats().remote_ops, 2);
    }

    #[test]
    fn client_reply_signatures() {
        let mut c = cluster(2);
        let sig = c.sign_reply(NodeId(0), b"result=5").unwrap();
        assert!(c.verify_reply(NodeId(0), b"result=5", &sig));
        assert!(!c.verify_reply(NodeId(0), b"result=6", &sig));
        assert!(!c.verify_reply(NodeId(1), b"result=5", &sig));
    }

    #[test]
    fn unconnected_nodes_cannot_auth_send() {
        let mut c = Cluster::new(Baseline::Tnic, NetworkStackKind::Tnic, 1);
        c.add_node(NodeId(0));
        c.add_node(NodeId(1));
        assert!(matches!(
            c.auth_send(NodeId(0), NodeId(1), b"x"),
            Err(CoreError::NoSession { .. })
        ));
        assert!(matches!(
            c.auth_send(NodeId(0), NodeId(9), b"x"),
            Err(CoreError::NoSession { .. }) | Err(CoreError::UnknownNode(9))
        ));
    }

    #[test]
    fn all_baselines_work_with_the_same_code() {
        for baseline in Baseline::ALL {
            let mut c = Cluster::fully_connected(2, baseline, NetworkStackKind::Tnic, 7);
            c.auth_send(NodeId(0), NodeId(1), b"generic").unwrap();
            assert_eq!(c.poll(NodeId(1)).unwrap().len(), 1, "{baseline}");
        }
    }

    #[test]
    fn tee_baseline_is_slower_than_tnic() {
        let mut tnic = Cluster::fully_connected(2, Baseline::Tnic, NetworkStackKind::Tnic, 7);
        let mut sev = Cluster::fully_connected(2, Baseline::AmdSev, NetworkStackKind::DrctIo, 7);
        for _ in 0..20 {
            tnic.auth_send(NodeId(0), NodeId(1), &[0u8; 64]).unwrap();
            sev.auth_send(NodeId(0), NodeId(1), &[0u8; 64]).unwrap();
        }
        assert!(sev.now() > tnic.now());
    }

    #[test]
    fn sparse_cluster_connects_lazily_on_first_send() {
        let mut c = Cluster::sparse(4, Baseline::Tnic, NetworkStackKind::Tnic, 7);
        assert_eq!(c.nodes().len(), 4);
        // No session yet; the first send brings the link up transparently.
        c.auth_send(NodeId(0), NodeId(1), b"first").unwrap();
        assert_eq!(c.poll(NodeId(1)).unwrap().len(), 1);
        // An unknown endpoint still fails instead of phantom-connecting.
        assert!(c.auth_send(NodeId(0), NodeId(9), b"x").is_err());
    }

    #[test]
    fn pending_nodes_track_undrained_inboxes() {
        let mut c = Cluster::sparse(4, Baseline::Tnic, NetworkStackKind::Tnic, 7);
        assert!(c.nodes_with_pending().is_empty());
        c.auth_send(NodeId(0), NodeId(2), b"a").unwrap();
        c.auth_send(NodeId(1), NodeId(3), b"b").unwrap();
        c.auth_send(NodeId(0), NodeId(3), b"c").unwrap();
        assert_eq!(c.nodes_with_pending(), vec![NodeId(2), NodeId(3)]);
        assert_eq!(c.poll(NodeId(3)).unwrap().len(), 2);
        assert_eq!(c.nodes_with_pending(), vec![NodeId(2)]);
        assert_eq!(c.poll(NodeId(2)).unwrap().len(), 1);
        assert!(c.nodes_with_pending().is_empty());
    }

    #[test]
    fn audit_message_accounting_counts_wire_and_saved_messages() {
        let mut c = cluster(2);
        c.note_audit_message(1, 1); // a lone challenge: nothing saved
        c.note_audit_message(1, 5); // a batch of 5: four envelopes saved
        assert_eq!(c.stats().messages_audit, 2);
        assert_eq!(c.stats().messages_batched, 4);
    }
}
