//! The NIC attestation kernel (paper §4.1, Algorithm 1).
//!
//! The attestation kernel sits on the data path between the RoCE protocol
//! kernel and the PCIe DMA engine. On transmission it computes
//! `α = HMAC(key[session], msg ‖ device-id ‖ counter)` and emits the attested
//! message `α ‖ msg ‖ id ‖ cnt`; on reception it recomputes the MAC and checks
//! that the carried counter equals the expected receive counter, which yields
//! transferable authentication and non-equivocation.
//!
//! Timing: the paper measures ~23 µs for a synchronous host→device→host
//! `Attest()` round trip of which ~70 % is PCIe transfer (Figure 6), and notes
//! that the in-fabric HMAC cost grows with the message size because HMAC
//! cannot be parallelised (§8.2). The kernel therefore charges a
//! size-dependent computation cost plus (optionally) the DMA access cost
//! against the simulation clock.

use crate::counters::CounterStore;
use crate::error::DeviceError;
use crate::keystore::Keystore;
use crate::types::{DeviceId, SessionId};
use serde::{Deserialize, Serialize};
use tnic_crypto::hmac::HmacSha256;
use tnic_sim::latency::SizeDependentLatency;
use tnic_sim::time::SimDuration;

/// Length of the attestation certificate α in bytes (HMAC-SHA-256).
///
/// The paper reserves 64 B for α plus metadata on the wire; we carry a 32-byte
/// HMAC-SHA-256 tag plus 16 bytes of metadata, which preserves the "payload
/// extension is negligible" property.
pub const ATTESTATION_LEN: usize = 32;

/// Length of the metadata (session id, device id, counter) appended to the
/// payload.
pub const METADATA_LEN: usize = 4 + 4 + 8;

/// Total wire overhead added by the attestation kernel.
pub const WIRE_OVERHEAD: usize = ATTESTATION_LEN + METADATA_LEN + 4;

/// A message extended with its attestation certificate and metadata, as
/// produced by `Attest()` and consumed by `Verify()`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttestedMessage {
    /// The attestation certificate α.
    pub mac: [u8; ATTESTATION_LEN],
    /// The session (connection) the message belongs to.
    pub session: SessionId,
    /// The device that generated the attestation.
    pub device: DeviceId,
    /// The monotonically increasing message counter ("timestamp").
    pub counter: u64,
    /// The application payload.
    pub payload: Vec<u8>,
}

/// A zero-copy view of an attested message in its wire format: all fields
/// are parsed, the payload stays a borrow of the wire buffer. This is the
/// hot-path reception type — parse, verify, and only materialise an owned
/// [`AttestedMessage`] (via [`AttestedView::to_owned`]) once verification
/// succeeded, so rejected traffic costs no allocation at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttestedView<'a> {
    /// The attestation certificate α.
    pub mac: [u8; ATTESTATION_LEN],
    /// The session (connection) the message belongs to.
    pub session: SessionId,
    /// The device that generated the attestation.
    pub device: DeviceId,
    /// The monotonically increasing message counter ("timestamp").
    pub counter: u64,
    /// The application payload, borrowed from the wire buffer.
    pub payload: &'a [u8],
}

impl<'a> AttestedView<'a> {
    /// Parses a wire-format attested message without copying the payload.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::MalformedMessage`] if the buffer is truncated
    /// or the length field is inconsistent.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, DeviceError> {
        if bytes.len() < WIRE_OVERHEAD {
            return Err(DeviceError::MalformedMessage("short header"));
        }
        let mut mac = [0u8; ATTESTATION_LEN];
        mac.copy_from_slice(&bytes[..ATTESTATION_LEN]);
        let mut off = ATTESTATION_LEN;
        let session = SessionId(u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()));
        off += 4;
        let device = DeviceId(u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()));
        off += 4;
        let counter = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        off += 8;
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 4;
        if bytes.len() != off + len {
            return Err(DeviceError::MalformedMessage("length mismatch"));
        }
        Ok(AttestedView {
            mac,
            session,
            device,
            counter,
            payload: &bytes[off..],
        })
    }

    /// Materialises an owned message (one payload allocation).
    #[must_use]
    pub fn to_owned(&self) -> AttestedMessage {
        AttestedMessage {
            mac: self.mac,
            session: self.session,
            device: self.device,
            counter: self.counter,
            payload: self.payload.to_vec(),
        }
    }

    /// Total size of the message on the wire.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        WIRE_OVERHEAD + self.payload.len()
    }
}

impl AttestedMessage {
    /// A borrowed view of this message (for the `*_view` verification
    /// entry points).
    #[must_use]
    pub fn as_view(&self) -> AttestedView<'_> {
        AttestedView {
            mac: self.mac,
            session: self.session,
            device: self.device,
            counter: self.counter,
            payload: &self.payload,
        }
    }

    /// Serialises the attested message into the TNIC wire format:
    /// `α ‖ session ‖ device ‖ counter ‖ len ‖ payload`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(WIRE_OVERHEAD + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Serialises into `out`, appending (callers `clear()` and reuse the
    /// buffer across messages — the allocation-free transmit path).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(WIRE_OVERHEAD + self.payload.len());
        encode_parts(
            &self.mac,
            self.session,
            self.device,
            self.counter,
            &self.payload,
            out,
        );
    }

    /// Parses a wire-format attested message into an owned value. For the
    /// reception hot path prefer [`AttestedView::parse`] + verification +
    /// [`AttestedView::to_owned`], which allocates only for accepted
    /// messages.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::MalformedMessage`] if the buffer is truncated or
    /// the length field is inconsistent.
    pub fn decode(bytes: &[u8]) -> Result<Self, DeviceError> {
        Ok(AttestedView::parse(bytes)?.to_owned())
    }

    /// Total size of the message on the wire.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        WIRE_OVERHEAD + self.payload.len()
    }
}

/// Appends the wire format `α ‖ session ‖ device ‖ counter ‖ len ‖ payload`.
fn encode_parts(
    mac: &[u8; ATTESTATION_LEN],
    session: SessionId,
    device: DeviceId,
    counter: u64,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    out.extend_from_slice(mac);
    out.extend_from_slice(&session.0.to_le_bytes());
    out.extend_from_slice(&device.0.to_le_bytes());
    out.extend_from_slice(&counter.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Computes the attestation MAC over `msg ‖ ID ‖ cnt` with the session key.
fn compute_mac(key: &[u8; 32], payload: &[u8], device: DeviceId, counter: u64) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(payload);
    mac.update(&device.0.to_le_bytes());
    mac.update(&counter.to_le_bytes());
    mac.finalize()
}

/// Timing model of the attestation kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttestationTiming {
    /// Cost of the HMAC computation as a function of payload size.
    pub hmac: SizeDependentLatency,
}

impl AttestationTiming {
    /// Timing calibrated to the paper's measurements: the in-fabric HMAC
    /// accounts for roughly 7 µs of the 23 µs `Attest()` latency at 64–128 B
    /// (the remainder being PCIe access/transfer, Figure 6), and latency grows
    /// by 30–40 % per payload doubling above 1 KiB (§8.2).
    #[must_use]
    pub fn paper_calibrated() -> Self {
        AttestationTiming {
            hmac: SizeDependentLatency::new(SimDuration::from_nanos(6_500), 5.0),
        }
    }

    /// A zero-cost timing model (for functional tests).
    #[must_use]
    pub fn zero() -> Self {
        AttestationTiming {
            hmac: SizeDependentLatency::new(SimDuration::ZERO, 0.0),
        }
    }
}

/// Statistics kept by the attestation kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttestationStats {
    /// Number of `Attest()` invocations.
    pub attested: u64,
    /// Number of successful `Verify()` invocations.
    pub verified: u64,
    /// Number of rejected messages (bad MAC or counter).
    pub rejected: u64,
}

/// The attestation kernel: keystore + counter store + HMAC unit.
#[derive(Debug, Clone)]
pub struct AttestationKernel {
    device: DeviceId,
    keystore: Keystore,
    counters: CounterStore,
    timing: AttestationTiming,
    stats: AttestationStats,
}

impl AttestationKernel {
    /// Creates an attestation kernel for `device` with the given timing model.
    #[must_use]
    pub fn new(device: DeviceId, timing: AttestationTiming) -> Self {
        AttestationKernel {
            device,
            keystore: Keystore::new(),
            counters: CounterStore::new(),
            timing,
            stats: AttestationStats::default(),
        }
    }

    /// The device this kernel belongs to.
    #[must_use]
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Installs a session key (done by the bootstrapping/attestation protocol,
    /// never by the untrusted host software).
    pub fn install_session_key(&mut self, session: SessionId, key: [u8; 32]) {
        self.keystore.install(session, key);
    }

    /// Returns `true` if a key is installed for `session`.
    #[must_use]
    pub fn has_session(&self, session: SessionId) -> bool {
        self.keystore.contains(session)
    }

    /// `Attest()` (Algorithm 1, lines 1–5): binds the payload to this device
    /// and the next send counter, returning the attested message and the time
    /// the in-fabric computation took.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownSession`] if no key is installed for
    /// `session`.
    pub fn attest(
        &mut self,
        session: SessionId,
        payload: &[u8],
    ) -> Result<(AttestedMessage, SimDuration), DeviceError> {
        let key = *self.keystore.key(session)?;
        let counter = self.counters.next_send(session);
        let mac = compute_mac(&key, payload, self.device, counter);
        self.stats.attested += 1;
        tnic_obs::trace_event!(
            tnic_obs::EventKind::Attest,
            node: self.device.0,
            seq: counter,
            aux: payload.len() as u64
        );
        let cost = self.timing.hmac.cost(payload.len());
        Ok((
            AttestedMessage {
                mac,
                session,
                device: self.device,
                counter,
                payload: payload.to_vec(),
            },
            cost,
        ))
    }

    /// `Attest()` writing the wire format straight into `out` (appending):
    /// the allocation-free transmit path. No intermediate [`AttestedMessage`]
    /// is built and the payload is copied exactly once, into the wire
    /// buffer — callers reuse `out` across messages.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownSession`] if no key is installed for
    /// `session`.
    pub fn attest_into(
        &mut self,
        session: SessionId,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<SimDuration, DeviceError> {
        let key = *self.keystore.key(session)?;
        let counter = self.counters.next_send(session);
        let mac = compute_mac(&key, payload, self.device, counter);
        self.stats.attested += 1;
        tnic_obs::trace_event!(
            tnic_obs::EventKind::Attest,
            node: self.device.0,
            seq: counter,
            aux: payload.len() as u64
        );
        out.reserve(WIRE_OVERHEAD + payload.len());
        encode_parts(&mac, session, self.device, counter, payload, out);
        Ok(self.timing.hmac.cost(payload.len()))
    }

    /// `Verify()` (Algorithm 1, lines 6–11): recomputes the MAC and enforces
    /// that the carried counter is exactly the next expected one, advancing it
    /// on success. This is the reception-path check that provides
    /// non-equivocation (no loss, no reordering, no duplication).
    ///
    /// # Errors
    ///
    /// * [`DeviceError::UnknownSession`] — no key installed.
    /// * [`DeviceError::BadAttestation`] — MAC mismatch.
    /// * [`DeviceError::CounterMismatch`] — replay, gap or reordering.
    pub fn verify(&mut self, message: &AttestedMessage) -> Result<SimDuration, DeviceError> {
        self.verify_view(&message.as_view())
    }

    /// [`AttestationKernel::verify`] over a zero-copy [`AttestedView`] — the
    /// reception hot path, run before any payload allocation.
    ///
    /// # Errors
    ///
    /// As [`AttestationKernel::verify`].
    pub fn verify_view(&mut self, message: &AttestedView<'_>) -> Result<SimDuration, DeviceError> {
        let key = *self.keystore.key(message.session)?;
        let cost = self.timing.hmac.cost(message.payload.len());
        let expected_mac = compute_mac(&key, message.payload, message.device, message.counter);
        if !tnic_crypto::ct::ct_eq(&expected_mac, &message.mac) {
            self.stats.rejected += 1;
            return Err(DeviceError::BadAttestation);
        }
        let expected = self.counters.expected_recv(message.session);
        if !self
            .counters
            .check_and_advance_recv(message.session, message.counter)
        {
            self.stats.rejected += 1;
            return Err(DeviceError::CounterMismatch {
                received: message.counter,
                expected,
            });
        }
        self.stats.verified += 1;
        tnic_obs::trace_event!(
            tnic_obs::EventKind::Verify,
            node: self.device.0,
            peer: message.device.0,
            seq: message.counter,
            aux: message.payload.len() as u64
        );
        Ok(cost)
    }

    /// Verifies only the cryptographic binding (MAC) of an attested message,
    /// without enforcing or advancing the receive counter. Used for local log
    /// verification (A2M `verify_lookup`, PeerReview audits) where entries are
    /// checked out of order.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownSession`] or [`DeviceError::BadAttestation`].
    pub fn verify_binding(
        &mut self,
        message: &AttestedMessage,
    ) -> Result<SimDuration, DeviceError> {
        self.verify_binding_view(&message.as_view())
    }

    /// [`AttestationKernel::verify_binding`] over a zero-copy
    /// [`AttestedView`].
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownSession`] or [`DeviceError::BadAttestation`].
    pub fn verify_binding_view(
        &mut self,
        message: &AttestedView<'_>,
    ) -> Result<SimDuration, DeviceError> {
        let key = *self.keystore.key(message.session)?;
        let cost = self.timing.hmac.cost(message.payload.len());
        let expected_mac = compute_mac(&key, message.payload, message.device, message.counter);
        if !tnic_crypto::ct::ct_eq(&expected_mac, &message.mac) {
            self.stats.rejected += 1;
            return Err(DeviceError::BadAttestation);
        }
        self.stats.verified += 1;
        Ok(cost)
    }

    /// The counter that will be assigned to the next outgoing message.
    #[must_use]
    pub fn peek_send_counter(&self, session: SessionId) -> u64 {
        self.counters.peek_send(session)
    }

    /// The counter expected on the next received message.
    #[must_use]
    pub fn expected_recv_counter(&self, session: SessionId) -> u64 {
        self.counters.expected_recv(session)
    }

    /// Kernel statistics.
    #[must_use]
    pub fn stats(&self) -> AttestationStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_pair() -> (AttestationKernel, AttestationKernel) {
        let mut tx = AttestationKernel::new(DeviceId(1), AttestationTiming::zero());
        let mut rx = AttestationKernel::new(DeviceId(2), AttestationTiming::zero());
        tx.install_session_key(SessionId(7), [9u8; 32]);
        rx.install_session_key(SessionId(7), [9u8; 32]);
        (tx, rx)
    }

    #[test]
    fn attest_then_verify_succeeds() {
        let (mut tx, mut rx) = kernel_pair();
        let (msg, _) = tx.attest(SessionId(7), b"hello").unwrap();
        assert_eq!(msg.counter, 0);
        assert_eq!(msg.device, DeviceId(1));
        rx.verify(&msg).unwrap();
        assert_eq!(rx.stats().verified, 1);
    }

    #[test]
    fn counters_increase_per_message() {
        let (mut tx, mut rx) = kernel_pair();
        for expected in 0..5u64 {
            let (msg, _) = tx.attest(SessionId(7), b"m").unwrap();
            assert_eq!(msg.counter, expected);
            rx.verify(&msg).unwrap();
        }
        assert_eq!(rx.expected_recv_counter(SessionId(7)), 5);
    }

    #[test]
    fn tampered_payload_rejected() {
        let (mut tx, mut rx) = kernel_pair();
        let (mut msg, _) = tx.attest(SessionId(7), b"pay").unwrap();
        msg.payload[0] ^= 1;
        assert_eq!(rx.verify(&msg), Err(DeviceError::BadAttestation));
        assert_eq!(rx.stats().rejected, 1);
    }

    #[test]
    fn tampered_counter_rejected() {
        let (mut tx, mut rx) = kernel_pair();
        let (mut msg, _) = tx.attest(SessionId(7), b"pay").unwrap();
        msg.counter = 5;
        // The MAC binds the counter, so this is caught as a bad attestation.
        assert_eq!(rx.verify(&msg), Err(DeviceError::BadAttestation));
    }

    #[test]
    fn replayed_message_rejected() {
        let (mut tx, mut rx) = kernel_pair();
        let (msg, _) = tx.attest(SessionId(7), b"pay").unwrap();
        rx.verify(&msg).unwrap();
        let err = rx.verify(&msg).unwrap_err();
        assert!(matches!(
            err,
            DeviceError::CounterMismatch {
                received: 0,
                expected: 1
            }
        ));
    }

    #[test]
    fn reordered_messages_rejected_until_gap_filled() {
        let (mut tx, mut rx) = kernel_pair();
        let (m0, _) = tx.attest(SessionId(7), b"a").unwrap();
        let (m1, _) = tx.attest(SessionId(7), b"b").unwrap();
        assert!(matches!(
            rx.verify(&m1),
            Err(DeviceError::CounterMismatch { .. })
        ));
        rx.verify(&m0).unwrap();
        rx.verify(&m1).unwrap();
    }

    #[test]
    fn wrong_session_key_rejected() {
        let mut tx = AttestationKernel::new(DeviceId(1), AttestationTiming::zero());
        let mut rx = AttestationKernel::new(DeviceId(2), AttestationTiming::zero());
        tx.install_session_key(SessionId(7), [1u8; 32]);
        rx.install_session_key(SessionId(7), [2u8; 32]);
        let (msg, _) = tx.attest(SessionId(7), b"x").unwrap();
        assert_eq!(rx.verify(&msg), Err(DeviceError::BadAttestation));
    }

    #[test]
    fn unknown_session_errors() {
        let mut k = AttestationKernel::new(DeviceId(1), AttestationTiming::zero());
        assert!(matches!(
            k.attest(SessionId(9), b"x"),
            Err(DeviceError::UnknownSession(SessionId(9)))
        ));
    }

    #[test]
    fn verify_binding_ignores_counter_order() {
        let (mut tx, mut rx) = kernel_pair();
        let (m0, _) = tx.attest(SessionId(7), b"a").unwrap();
        let (m1, _) = tx.attest(SessionId(7), b"b").unwrap();
        rx.verify_binding(&m1).unwrap();
        rx.verify_binding(&m0).unwrap();
        rx.verify_binding(&m0).unwrap();
    }

    #[test]
    fn wire_round_trip() {
        let (mut tx, _) = kernel_pair();
        let (msg, _) = tx.attest(SessionId(7), b"some payload bytes").unwrap();
        let encoded = msg.encode();
        assert_eq!(encoded.len(), msg.wire_len());
        let decoded = AttestedMessage::decode(&encoded).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn attest_into_matches_owned_wire_format() {
        let (mut tx_a, mut rx) = kernel_pair();
        let mut tx_b = AttestationKernel::new(DeviceId(1), AttestationTiming::zero());
        tx_b.install_session_key(SessionId(7), [9u8; 32]);
        let (owned, cost_a) = tx_a.attest(SessionId(7), b"same payload").unwrap();
        let mut wire = Vec::new();
        let cost_b = tx_b
            .attest_into(SessionId(7), b"same payload", &mut wire)
            .unwrap();
        assert_eq!(wire, owned.encode());
        assert_eq!(cost_a, cost_b);
        // The in-place wire bytes verify like any attested message.
        let view = AttestedView::parse(&wire).unwrap();
        rx.verify_view(&view).unwrap();
    }

    #[test]
    fn attest_into_reuses_the_buffer_and_advances_counters() {
        let (mut tx, mut rx) = kernel_pair();
        let mut wire = Vec::new();
        for expected in 0..3u64 {
            wire.clear();
            tx.attest_into(SessionId(7), b"m", &mut wire).unwrap();
            let view = AttestedView::parse(&wire).unwrap();
            assert_eq!(view.counter, expected);
            rx.verify_view(&view).unwrap();
        }
    }

    #[test]
    fn view_parse_borrows_and_round_trips() {
        let (mut tx, mut rx) = kernel_pair();
        let (msg, _) = tx.attest(SessionId(7), b"view payload").unwrap();
        let encoded = msg.encode();
        let view = AttestedView::parse(&encoded).unwrap();
        assert_eq!(view.payload, b"view payload");
        assert_eq!(view.wire_len(), encoded.len());
        assert_eq!(view.to_owned(), msg);
        assert_eq!(msg.as_view(), view);
        rx.verify_binding_view(&view).unwrap();
        // Truncated and over-long buffers are rejected without allocation.
        assert!(AttestedView::parse(&encoded[..WIRE_OVERHEAD - 1]).is_err());
        assert!(AttestedView::parse(&encoded[..encoded.len() - 1]).is_err());
        let mut extended = encoded.clone();
        extended.push(0);
        assert!(AttestedView::parse(&extended).is_err());
    }

    #[test]
    fn tampered_view_rejected_before_any_copy() {
        let (mut tx, mut rx) = kernel_pair();
        let (msg, _) = tx.attest(SessionId(7), b"payload").unwrap();
        let mut encoded = msg.encode();
        let last = encoded.len() - 1;
        encoded[last] ^= 1;
        let view = AttestedView::parse(&encoded).unwrap();
        assert_eq!(rx.verify_view(&view), Err(DeviceError::BadAttestation));
    }

    #[test]
    fn encode_into_appends_to_reused_buffer() {
        let (mut tx, _) = kernel_pair();
        let (msg, _) = tx.attest(SessionId(7), b"abc").unwrap();
        let mut buf = Vec::new();
        msg.encode_into(&mut buf);
        assert_eq!(buf, msg.encode());
        buf.clear();
        msg.encode_into(&mut buf);
        assert_eq!(buf, msg.encode());
    }

    #[test]
    fn decode_rejects_truncation_and_bad_length() {
        let (mut tx, _) = kernel_pair();
        let (msg, _) = tx.attest(SessionId(7), b"payload").unwrap();
        let encoded = msg.encode();
        assert!(AttestedMessage::decode(&encoded[..10]).is_err());
        let mut bad = encoded.clone();
        bad.truncate(encoded.len() - 1);
        assert!(AttestedMessage::decode(&bad).is_err());
        let mut extended = encoded;
        extended.push(0);
        assert!(AttestedMessage::decode(&extended).is_err());
    }

    #[test]
    fn timing_grows_with_payload_size() {
        let timing = AttestationTiming::paper_calibrated();
        let mut k = AttestationKernel::new(DeviceId(1), timing);
        k.install_session_key(SessionId(1), [0u8; 32]);
        let (_, cost_small) = k.attest(SessionId(1), &[0u8; 64]).unwrap();
        let (_, cost_large) = k.attest(SessionId(1), &[0u8; 8192]).unwrap();
        assert!(cost_large > cost_small);
    }

    #[test]
    fn stats_track_operations() {
        let (mut tx, mut rx) = kernel_pair();
        let (msg, _) = tx.attest(SessionId(7), b"x").unwrap();
        rx.verify(&msg).unwrap();
        let _ = rx.verify(&msg);
        assert_eq!(tx.stats().attested, 1);
        assert_eq!(rx.stats().verified, 1);
        assert_eq!(rx.stats().rejected, 1);
    }
}
