//! The attestation kernel's counter store (paper §4.1).
//!
//! TNIC holds two counters per session: `send_cnts`, the timestamp assigned to
//! the next outgoing message, and `recv_cnts`, the next counter value expected
//! from the peer. Counters increase monotonically and deterministically after
//! every send and receive so that unique messages are bound to unique
//! counters — the mechanism behind non-equivocation: no message can be lost,
//! re-ordered or executed twice without the verifier noticing.

use crate::types::SessionId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Monotonic send/receive counters per session.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CounterStore {
    send_cnts: HashMap<SessionId, u64>,
    recv_cnts: HashMap<SessionId, u64>,
}

impl CounterStore {
    /// Creates an empty counter store.
    #[must_use]
    pub fn new() -> Self {
        CounterStore::default()
    }

    /// Returns the counter to assign to the next outgoing message on
    /// `session` and advances the send counter (post-increment, as in
    /// Algorithm 1 line 2).
    pub fn next_send(&mut self, session: SessionId) -> u64 {
        let slot = self.send_cnts.entry(session).or_insert(0);
        let current = *slot;
        *slot += 1;
        current
    }

    /// The counter value expected on the next received message for `session`.
    #[must_use]
    pub fn expected_recv(&self, session: SessionId) -> u64 {
        *self.recv_cnts.get(&session).unwrap_or(&0)
    }

    /// Checks `received` against the expected receive counter; on match the
    /// counter advances and `true` is returned, otherwise state is unchanged
    /// (Algorithm 1 line 8).
    pub fn check_and_advance_recv(&mut self, session: SessionId, received: u64) -> bool {
        let slot = self.recv_cnts.entry(session).or_insert(0);
        if *slot == received {
            *slot += 1;
            true
        } else {
            false
        }
    }

    /// Current (next unassigned) send counter without advancing it.
    #[must_use]
    pub fn peek_send(&self, session: SessionId) -> u64 {
        *self.send_cnts.get(&session).unwrap_or(&0)
    }

    /// Number of sessions with any counter state.
    #[must_use]
    pub fn session_count(&self) -> usize {
        let mut ids: Vec<SessionId> = self.send_cnts.keys().copied().collect();
        ids.extend(self.recv_cnts.keys().copied());
        ids.sort();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_counters_are_monotonic_and_per_session() {
        let mut c = CounterStore::new();
        assert_eq!(c.next_send(SessionId(1)), 0);
        assert_eq!(c.next_send(SessionId(1)), 1);
        assert_eq!(c.next_send(SessionId(2)), 0);
        assert_eq!(c.peek_send(SessionId(1)), 2);
        assert_eq!(c.peek_send(SessionId(2)), 1);
    }

    #[test]
    fn recv_counter_enforces_fifo() {
        let mut c = CounterStore::new();
        let s = SessionId(3);
        assert_eq!(c.expected_recv(s), 0);
        assert!(c.check_and_advance_recv(s, 0));
        assert!(!c.check_and_advance_recv(s, 0), "replay must be rejected");
        assert!(!c.check_and_advance_recv(s, 2), "gap must be rejected");
        assert!(c.check_and_advance_recv(s, 1));
        assert_eq!(c.expected_recv(s), 2);
    }

    #[test]
    fn failed_check_does_not_advance() {
        let mut c = CounterStore::new();
        let s = SessionId(4);
        assert!(!c.check_and_advance_recv(s, 7));
        assert_eq!(c.expected_recv(s), 0);
    }

    #[test]
    fn session_count_merges_send_and_recv() {
        let mut c = CounterStore::new();
        c.next_send(SessionId(1));
        c.check_and_advance_recv(SessionId(2), 0);
        c.next_send(SessionId(2));
        assert_eq!(c.session_count(), 2);
    }
}
