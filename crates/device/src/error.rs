//! Error types for the TNIC device model.

use crate::types::{QueuePairId, SessionId};
use std::error::Error;
use std::fmt;

/// Errors raised by the TNIC hardware model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// No key installed for the given session.
    UnknownSession(SessionId),
    /// No state for the given queue pair.
    UnknownQueuePair(QueuePairId),
    /// The attestation MAC did not verify (transferable authentication
    /// violation or corrupted message).
    BadAttestation,
    /// The message counter did not match the expected receive counter
    /// (equivocation, replay, reordering or loss).
    CounterMismatch {
        /// Counter carried by the message.
        received: u64,
        /// Counter the device expected next.
        expected: u64,
    },
    /// A malformed wire message could not be decoded.
    MalformedMessage(&'static str),
    /// ARP lookup failed for the destination address.
    ArpMiss,
    /// The device has not been bootstrapped / attested yet.
    NotProvisioned,
    /// The device resources cannot accommodate the requested configuration.
    ResourceExhausted(&'static str),
    /// DMA access outside a registered memory region.
    DmaOutOfBounds,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::UnknownSession(s) => write!(f, "no key installed for session {s}"),
            DeviceError::UnknownQueuePair(qp) => write!(f, "unknown queue pair {qp}"),
            DeviceError::BadAttestation => write!(f, "attestation verification failed"),
            DeviceError::CounterMismatch { received, expected } => write!(
                f,
                "counter mismatch: received {received}, expected {expected}"
            ),
            DeviceError::MalformedMessage(what) => write!(f, "malformed message: {what}"),
            DeviceError::ArpMiss => write!(f, "arp lookup failed"),
            DeviceError::NotProvisioned => write!(f, "device has not been provisioned"),
            DeviceError::ResourceExhausted(what) => write!(f, "resource exhausted: {what}"),
            DeviceError::DmaOutOfBounds => write!(f, "dma access outside registered memory"),
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_detail() {
        let e = DeviceError::CounterMismatch {
            received: 5,
            expected: 3,
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('3'));
        assert!(DeviceError::UnknownSession(SessionId(9))
            .to_string()
            .contains("s9"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(DeviceError::BadAttestation);
        assert!(!e.to_string().is_empty());
    }
}
