//! The ARP server IP of the TNIC hardware (paper §4.2).
//!
//! Before transmission, the request-generation module resolves the remote MAC
//! address from a lookup table mapping IP addresses to MAC addresses.

use crate::error::DeviceError;
use crate::types::{Ipv4Addr, MacAddr};
use std::collections::HashMap;

/// A static ARP lookup table.
#[derive(Debug, Clone, Default)]
pub struct ArpServer {
    table: HashMap<Ipv4Addr, MacAddr>,
}

impl ArpServer {
    /// Creates an empty ARP table.
    #[must_use]
    pub fn new() -> Self {
        ArpServer {
            table: HashMap::new(),
        }
    }

    /// Adds or replaces a mapping.
    pub fn insert(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.table.insert(ip, mac);
    }

    /// Resolves `ip` to a MAC address.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ArpMiss`] if the address is unknown.
    pub fn lookup(&self, ip: Ipv4Addr) -> Result<MacAddr, DeviceError> {
        self.table.get(&ip).copied().ok_or(DeviceError::ArpMiss)
    }

    /// Number of entries in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` if the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut arp = ArpServer::new();
        assert!(arp.is_empty());
        let ip = Ipv4Addr::new(10, 0, 0, 2);
        let mac = MacAddr([1, 2, 3, 4, 5, 6]);
        arp.insert(ip, mac);
        assert_eq!(arp.lookup(ip).unwrap(), mac);
        assert_eq!(arp.len(), 1);
    }

    #[test]
    fn miss_errors() {
        let arp = ArpServer::new();
        assert_eq!(
            arp.lookup(Ipv4Addr::new(10, 0, 0, 9)),
            Err(DeviceError::ArpMiss)
        );
    }

    #[test]
    fn replace_updates_mapping() {
        let mut arp = ArpServer::new();
        let ip = Ipv4Addr::new(10, 0, 0, 2);
        arp.insert(ip, MacAddr([1; 6]));
        arp.insert(ip, MacAddr([2; 6]));
        assert_eq!(arp.lookup(ip).unwrap(), MacAddr([2; 6]));
    }
}
