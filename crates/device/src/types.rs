//! Identifiers and small value types shared by the TNIC hardware model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a TNIC device (the 4-byte `ID` of paper §4.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tnic{}", self.0)
    }
}

/// Identifier of a connection/session on a device (the 4-byte session id).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SessionId(pub u32);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a queue pair in the RoCE protocol kernel.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct QueuePairId(pub u32);

impl fmt::Display for QueuePairId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

/// A 48-bit Ethernet MAC address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Derives a locally administered MAC address from a device id.
    #[must_use]
    pub fn from_device(device: DeviceId) -> Self {
        let b = device.0.to_be_bytes();
        MacAddr([0x02, 0x54, b[0], b[1], b[2], b[3]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// An IPv4 address (the network layer of RoCE v2 uses UDP/IPv4, paper §4.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Creates an address from four octets.
    #[must_use]
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr([a, b, c, d])
    }

    /// Derives a deterministic cluster address from a device id.
    #[must_use]
    pub fn from_device(device: DeviceId) -> Self {
        let b = device.0.to_be_bytes();
        Ipv4Addr([10, 0, b[2], b[3]])
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// Static device configuration written by the driver at initialisation
/// (paper §5.1: MAC address, QSFP port, IP address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// The device identifier burnt into the attestation metadata.
    pub device_id: DeviceId,
    /// The MAC address of the QSFP port in use.
    pub mac_addr: MacAddr,
    /// The IP address used by the application.
    pub ip_addr: Ipv4Addr,
    /// Which of the two QSFP28 ports is used (the paper uses a single port).
    pub qsfp_port: u8,
    /// UDP port used by the RoCE v2 encapsulation.
    pub udp_port: u16,
}

impl DeviceConfig {
    /// A reasonable default configuration for device `device_id`.
    #[must_use]
    pub fn for_device(device_id: DeviceId) -> Self {
        DeviceConfig {
            device_id,
            mac_addr: MacAddr::from_device(device_id),
            ip_addr: Ipv4Addr::from_device(device_id),
            qsfp_port: 0,
            udp_port: 4791,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(DeviceId(3).to_string(), "tnic3");
        assert_eq!(SessionId(7).to_string(), "s7");
        assert_eq!(QueuePairId(1).to_string(), "qp1");
        assert_eq!(Ipv4Addr::new(10, 0, 0, 1).to_string(), "10.0.0.1");
        assert_eq!(MacAddr([0, 1, 2, 3, 4, 5]).to_string(), "00:01:02:03:04:05");
    }

    #[test]
    fn derived_addresses_are_unique_per_device() {
        let a = MacAddr::from_device(DeviceId(1));
        let b = MacAddr::from_device(DeviceId(2));
        assert_ne!(a, b);
        assert_ne!(
            Ipv4Addr::from_device(DeviceId(1)),
            Ipv4Addr::from_device(DeviceId(2))
        );
    }

    #[test]
    fn default_config_is_consistent() {
        let cfg = DeviceConfig::for_device(DeviceId(5));
        assert_eq!(cfg.device_id, DeviceId(5));
        assert_eq!(cfg.udp_port, 4791);
        assert_eq!(cfg.mac_addr, MacAddr::from_device(DeviceId(5)));
    }
}
