//! Functional model of the TNIC FPGA SmartNIC (paper §4).
//!
//! The paper implements TNIC on Alveo U280 FPGA SmartNICs: an *attestation
//! kernel* providing transferable authentication and non-equivocation sits on
//! the data path between a RoCE (RDMA over Converged Ethernet) protocol kernel
//! and the PCIe DMA engine. This crate reproduces that hardware as a
//! functional, latency-calibrated model:
//!
//! * [`attestation`] — the attestation kernel (Algorithm 1): HMAC unit,
//!   [`keystore`] and monotonic [`counters`], plus the attested wire format.
//! * [`roce`] — the RoCE protocol kernel: queue pairs, PSN/MSN tracking,
//!   cumulative ACKs, retransmission and in-order delivery.
//! * [`dma`] — the PCIe DMA/bridge model and registered host-memory regions.
//! * [`mac`] — the 100 Gb Ethernet MAC with line-rate serialisation costs.
//! * [`arp`] — the ARP server used during request generation.
//! * [`regs`] — the control/status registers mapped into user space.
//! * [`controller`] — the bootstrapping controller, hardware key and
//!   measurement certificates used by remote attestation.
//! * [`resources`] — the analytic FPGA resource model (Table 5, Figure 13).
//! * [`device`] — [`TnicDevice`], the assembled card.
//!
//! # Example
//!
//! ```
//! use tnic_crypto::ed25519::Keypair;
//! use tnic_device::device::TnicDevice;
//! use tnic_device::types::{DeviceId, SessionId};
//!
//! let vendor = Keypair::from_seed(&[1u8; 32]);
//! let mut sender = TnicDevice::for_tests(DeviceId(1), vendor.verifying);
//! let mut receiver = TnicDevice::for_tests(DeviceId(2), vendor.verifying);
//! sender.provision_session(SessionId(1), [7u8; 32]);
//! receiver.provision_session(SessionId(1), [7u8; 32]);
//!
//! let (attested, _cost) = sender.local_send(SessionId(1), b"hello").unwrap();
//! receiver.local_verify(&attested).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod attestation;
pub mod controller;
pub mod counters;
pub mod device;
pub mod dma;
pub mod error;
pub mod keystore;
pub mod mac;
pub mod regs;
pub mod resources;
pub mod roce;
pub mod types;

pub use attestation::{AttestationKernel, AttestedMessage};
pub use device::TnicDevice;
pub use error::DeviceError;
pub use types::{DeviceConfig, DeviceId, QueuePairId, SessionId};
