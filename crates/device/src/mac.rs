//! The 100 Gb Ethernet MAC model (paper §4.2).
//!
//! The CMAC kernel connects the RoCE kernel to the network fabric over a 100G
//! Ethernet subsystem. The model accounts for wire serialisation time at the
//! configured line rate and keeps frame counters, plus a frame check sequence
//! so link-level corruption is detectable in simulations that inject it.

use serde::{Deserialize, Serialize};
use tnic_sim::latency::SizeDependentLatency;
use tnic_sim::time::SimDuration;

/// Statistics exposed by the MAC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacStats {
    /// Frames transmitted.
    pub tx_frames: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Frames received.
    pub rx_frames: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Frames dropped due to FCS errors.
    pub fcs_errors: u64,
}

/// The 100 Gb MAC: line-rate serialisation model + counters.
#[derive(Debug, Clone)]
pub struct EthernetMac {
    line: SizeDependentLatency,
    stats: MacStats,
}

impl Default for EthernetMac {
    fn default() -> Self {
        Self::new_100g()
    }
}

impl EthernetMac {
    /// A MAC operating at 100 Gb/s with a small fixed per-frame overhead.
    #[must_use]
    pub fn new_100g() -> Self {
        EthernetMac {
            line: SizeDependentLatency::from_line_rate_gbps(SimDuration::from_nanos(50), 100.0),
            stats: MacStats::default(),
        }
    }

    /// A MAC operating at an arbitrary line rate (Gb/s).
    #[must_use]
    pub fn with_line_rate(gbps: f64) -> Self {
        EthernetMac {
            line: SizeDependentLatency::from_line_rate_gbps(SimDuration::from_nanos(50), gbps),
            stats: MacStats::default(),
        }
    }

    /// Computes the frame check sequence over a frame (CRC-32/ISO-HDLC).
    #[must_use]
    pub fn frame_check_sequence(frame: &[u8]) -> u32 {
        let mut crc: u32 = 0xffff_ffff;
        for &byte in frame {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            }
        }
        !crc
    }

    /// Accounts for the transmission of a frame of `bytes` bytes and returns
    /// the serialisation delay.
    pub fn transmit(&mut self, bytes: usize) -> SimDuration {
        self.stats.tx_frames += 1;
        self.stats.tx_bytes += bytes as u64;
        self.line.cost(bytes)
    }

    /// Accounts for the reception of a frame, checking its FCS. Returns
    /// `Some(delay)` when the frame is accepted and `None` if it is dropped
    /// because the FCS does not match.
    pub fn receive(&mut self, frame: &[u8], fcs: u32) -> Option<SimDuration> {
        if Self::frame_check_sequence(frame) != fcs {
            self.stats.fcs_errors += 1;
            return None;
        }
        self.stats.rx_frames += 1;
        self.stats.rx_bytes += frame.len() as u64;
        Some(self.line.cost(frame.len()))
    }

    /// Current MAC statistics.
    #[must_use]
    pub fn stats(&self) -> MacStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // CRC-32/ISO-HDLC of "123456789" is 0xCBF43926.
        assert_eq!(EthernetMac::frame_check_sequence(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn transmit_serialisation_scales_with_size() {
        let mut mac = EthernetMac::new_100g();
        let small = mac.transmit(128);
        let large = mac.transmit(32 * 1024);
        assert!(large > small);
        assert_eq!(mac.stats().tx_frames, 2);
        assert_eq!(mac.stats().tx_bytes, 128 + 32 * 1024);
    }

    #[test]
    fn receive_checks_fcs() {
        let mut mac = EthernetMac::new_100g();
        let frame = b"attested message frame";
        let fcs = EthernetMac::frame_check_sequence(frame);
        assert!(mac.receive(frame, fcs).is_some());
        assert!(mac.receive(frame, fcs ^ 1).is_none());
        assert_eq!(mac.stats().rx_frames, 1);
        assert_eq!(mac.stats().fcs_errors, 1);
    }

    #[test]
    fn slower_line_rate_costs_more() {
        let mut fast = EthernetMac::new_100g();
        let mut slow = EthernetMac::with_line_rate(10.0);
        assert!(slow.transmit(4096) > fast.transmit(4096));
    }
}
