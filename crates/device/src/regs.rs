//! Control and status registers exposed to the host through mapped pages
//! (paper §5.1).
//!
//! The driver maps one page per device (`/dev/fpga<ID>`); reads and writes to
//! that page are reads and writes of these registers. The software network
//! stack posts requests by filling request registers and ringing a doorbell.

use serde::{Deserialize, Serialize};

/// Number of 64-bit registers in the mapped page (4 KiB / 8 B).
pub const REGISTER_COUNT: usize = 512;

/// Well-known register offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(usize)]
pub enum Register {
    /// Device control word (bit 0: enabled).
    Control = 0,
    /// Device status word (bit 0: ready, bit 1: provisioned).
    Status = 1,
    /// MAC address (lower 48 bits).
    MacAddr = 2,
    /// IPv4 address (lower 32 bits).
    IpAddr = 3,
    /// UDP port for RoCE v2.
    UdpPort = 4,
    /// QSFP port selector.
    QsfpPort = 5,
    /// Request opcode for the next doorbell.
    RequestOpcode = 8,
    /// Queue pair the request targets.
    RequestQp = 9,
    /// Host-memory offset of the request payload.
    RequestAddr = 10,
    /// Length of the request payload.
    RequestLen = 11,
    /// Session id used for attestation.
    RequestSession = 12,
    /// Doorbell: writing a non-zero value submits the request.
    Doorbell = 15,
    /// Number of completions available to poll.
    CompletionCount = 16,
}

/// A simple 4 KiB register file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterFile {
    regs: Vec<u64>,
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegisterFile {
    /// Creates a zeroed register file.
    #[must_use]
    pub fn new() -> Self {
        RegisterFile {
            regs: vec![0u64; REGISTER_COUNT],
        }
    }

    /// Reads a named register.
    #[must_use]
    pub fn read(&self, reg: Register) -> u64 {
        self.regs[reg as usize]
    }

    /// Writes a named register.
    pub fn write(&mut self, reg: Register, value: u64) {
        self.regs[reg as usize] = value;
    }

    /// Reads a register by raw offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= REGISTER_COUNT`.
    #[must_use]
    pub fn read_offset(&self, offset: usize) -> u64 {
        self.regs[offset]
    }

    /// Writes a register by raw offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= REGISTER_COUNT`.
    pub fn write_offset(&mut self, offset: usize, value: u64) {
        self.regs[offset] = value;
    }

    /// Returns `true` if the doorbell register is set, clearing it.
    pub fn take_doorbell(&mut self) -> bool {
        let rung = self.read(Register::Doorbell) != 0;
        self.write(Register::Doorbell, 0);
        rung
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_named_registers() {
        let mut regs = RegisterFile::new();
        assert_eq!(regs.read(Register::Status), 0);
        regs.write(Register::Status, 0b11);
        assert_eq!(regs.read(Register::Status), 3);
    }

    #[test]
    fn read_write_by_offset() {
        let mut regs = RegisterFile::new();
        regs.write_offset(100, 42);
        assert_eq!(regs.read_offset(100), 42);
    }

    #[test]
    fn doorbell_is_cleared_on_take() {
        let mut regs = RegisterFile::new();
        assert!(!regs.take_doorbell());
        regs.write(Register::Doorbell, 1);
        assert!(regs.take_doorbell());
        assert!(!regs.take_doorbell());
    }

    #[test]
    #[should_panic]
    fn out_of_range_offset_panics() {
        let regs = RegisterFile::new();
        let _ = regs.read_offset(REGISTER_COUNT);
    }
}
