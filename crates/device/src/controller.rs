//! Device-side bootstrapping state: hardware key, controller binary and
//! controller key pair (paper §4.3).
//!
//! At manufacturing time a device-unique hardware key `HW_key` is burnt into
//! the card. The firmware later loads the controller binary `Ctrl_bin`,
//! generates a key pair `Ctrl_pub/priv` for this device and binary, and signs
//! the measurement `m = <H(Ctrl_bin), Ctrl_pub>` with `HW_key`, producing the
//! certificate used during remote attestation. The remote-attestation message
//! flow itself is orchestrated by `tnic-core::attestation`; this module only
//! holds the trusted device-side state and primitive operations.

use crate::error::DeviceError;
use crate::types::DeviceId;
use tnic_crypto::ed25519::{Keypair, Signature, SigningKey, VerifyingKey};
use tnic_crypto::hmac::{hmac_sha256, verify_hmac_sha256};
use tnic_crypto::sha256::sha256;

/// The device-unique secret burnt by the manufacturer.
///
/// The manufacturer shares it with the (trusted) IP vendor so the vendor can
/// check that measurements really come from a genuine device.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HardwareKey(pub [u8; 32]);

impl std::fmt::Debug for HardwareKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HardwareKey(<redacted>)")
    }
}

/// The controller firmware binary (modelled as its raw bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerBinary {
    /// The binary image.
    pub image: Vec<u8>,
    /// Human-readable version tag.
    pub version: String,
}

impl ControllerBinary {
    /// A reference controller binary for tests and examples.
    #[must_use]
    pub fn reference(version: &str) -> Self {
        ControllerBinary {
            image: format!("tnic-controller-{version}").into_bytes(),
            version: version.to_owned(),
        }
    }

    /// SHA-256 measurement of the binary.
    #[must_use]
    pub fn measurement(&self) -> [u8; 32] {
        sha256(&self.image)
    }
}

/// The measurement certificate `Ctrl_bin cert = <m, Sign(m, HW_key)>` where
/// `m = <H(Ctrl_bin), Ctrl_pub>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryCertificate {
    /// Hash of the controller binary.
    pub binary_hash: [u8; 32],
    /// The controller's public key.
    pub controller_public: VerifyingKey,
    /// HMAC of the measurement under the hardware key.
    pub hw_signature: [u8; 32],
}

impl BinaryCertificate {
    fn measurement_bytes(binary_hash: &[u8; 32], controller_public: &VerifyingKey) -> Vec<u8> {
        let mut m = Vec::with_capacity(64);
        m.extend_from_slice(binary_hash);
        m.extend_from_slice(&controller_public.to_bytes());
        m
    }

    /// Verifies the certificate against a hardware key and an expected binary
    /// measurement (what the IP vendor does in step 4 of Figure 3).
    #[must_use]
    pub fn verify(&self, hw_key: &HardwareKey, expected_binary_hash: &[u8; 32]) -> bool {
        if &self.binary_hash != expected_binary_hash {
            return false;
        }
        let m = Self::measurement_bytes(&self.binary_hash, &self.controller_public);
        verify_hmac_sha256(&hw_key.0, &m, &self.hw_signature)
    }
}

/// A nonce-bound attestation certificate `cert = <n, Ctrl_bin cert>` signed
/// with the controller key (steps 2–3 of Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationCertificate {
    /// The IP vendor's freshness nonce.
    pub nonce: [u8; 32],
    /// The embedded binary certificate.
    pub binary_cert: BinaryCertificate,
    /// Signature over `nonce ‖ binary_cert` with `Ctrl_priv`.
    pub signature: Signature,
}

impl AttestationCertificate {
    fn signed_bytes(nonce: &[u8; 32], binary_cert: &BinaryCertificate) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(nonce);
        out.extend_from_slice(&binary_cert.binary_hash);
        out.extend_from_slice(&binary_cert.controller_public.to_bytes());
        out.extend_from_slice(&binary_cert.hw_signature);
        out
    }

    /// Verifies the controller signature and the embedded binary certificate.
    #[must_use]
    pub fn verify(
        &self,
        hw_key: &HardwareKey,
        expected_binary_hash: &[u8; 32],
        expected_nonce: &[u8; 32],
    ) -> bool {
        if &self.nonce != expected_nonce {
            return false;
        }
        if !self.binary_cert.verify(hw_key, expected_binary_hash) {
            return false;
        }
        let bytes = Self::signed_bytes(&self.nonce, &self.binary_cert);
        self.binary_cert
            .controller_public
            .verify(&bytes, &self.signature)
            .is_ok()
    }
}

/// The controller running on the TNIC device during bootstrapping and remote
/// attestation.
#[derive(Debug, Clone)]
pub struct DeviceController {
    device: DeviceId,
    hw_key: HardwareKey,
    binary: ControllerBinary,
    keypair: Keypair,
    ip_vendor_public: VerifyingKey,
    bitstream: Option<Vec<u8>>,
}

impl DeviceController {
    /// Boots the controller: loads the binary, generates the per-device
    /// controller key pair and records the embedded IP-vendor public key.
    #[must_use]
    pub fn boot(
        device: DeviceId,
        hw_key: HardwareKey,
        binary: ControllerBinary,
        ip_vendor_public: VerifyingKey,
        key_seed: [u8; 32],
    ) -> Self {
        DeviceController {
            device,
            hw_key,
            binary,
            keypair: Keypair::from_seed(&key_seed),
            ip_vendor_public,
            bitstream: None,
        }
    }

    /// The device this controller runs on.
    #[must_use]
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The controller's public key.
    #[must_use]
    pub fn public_key(&self) -> VerifyingKey {
        self.keypair.verifying
    }

    /// The IP vendor public key embedded in the controller binary.
    #[must_use]
    pub fn ip_vendor_public(&self) -> VerifyingKey {
        self.ip_vendor_public
    }

    /// The measurement of the loaded controller binary.
    #[must_use]
    pub fn binary_measurement(&self) -> [u8; 32] {
        self.binary.measurement()
    }

    /// Produces the `Ctrl_bin cert`: the measurement signed with the hardware
    /// key (done once by the firmware during bootstrapping).
    #[must_use]
    pub fn binary_certificate(&self) -> BinaryCertificate {
        let binary_hash = self.binary.measurement();
        let m = BinaryCertificate::measurement_bytes(&binary_hash, &self.keypair.verifying);
        BinaryCertificate {
            binary_hash,
            controller_public: self.keypair.verifying,
            hw_signature: hmac_sha256(&self.hw_key.0, &m),
        }
    }

    /// Produces the nonce-bound attestation certificate (steps 2–3 of
    /// Figure 3) in response to the IP vendor's challenge.
    #[must_use]
    pub fn certify(&self, nonce: [u8; 32]) -> AttestationCertificate {
        let binary_cert = self.binary_certificate();
        let bytes = AttestationCertificate::signed_bytes(&nonce, &binary_cert);
        AttestationCertificate {
            nonce,
            binary_cert,
            signature: self.keypair.signing.sign(&bytes),
        }
    }

    /// Signs arbitrary channel-establishment data with the controller key
    /// (used for the mutually authenticated TLS-like handshake).
    #[must_use]
    pub fn sign(&self, data: &[u8]) -> Signature {
        self.keypair.signing.sign(data)
    }

    /// Gives read access to the signing key holder for the handshake.
    #[must_use]
    pub fn signing_key(&self) -> &SigningKey {
        &self.keypair.signing
    }

    /// Installs the decrypted TNIC bitstream received from the IP vendor
    /// (step 7/17 of the protocol). The device is provisioned afterwards.
    pub fn install_bitstream(&mut self, bitstream: Vec<u8>) {
        self.bitstream = Some(bitstream);
    }

    /// Returns `true` once a bitstream has been installed.
    #[must_use]
    pub fn is_provisioned(&self) -> bool {
        self.bitstream.is_some()
    }

    /// The hash of the installed bitstream.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NotProvisioned`] if no bitstream is installed.
    pub fn bitstream_measurement(&self) -> Result<[u8; 32], DeviceError> {
        self.bitstream
            .as_ref()
            .map(|b| sha256(b))
            .ok_or(DeviceError::NotProvisioned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> (DeviceController, HardwareKey, ControllerBinary, Keypair) {
        let hw_key = HardwareKey([0x11; 32]);
        let binary = ControllerBinary::reference("1.0");
        let vendor = Keypair::from_seed(&[0x22; 32]);
        let ctrl = DeviceController::boot(
            DeviceId(1),
            hw_key,
            binary.clone(),
            vendor.verifying,
            [0x33; 32],
        );
        (ctrl, hw_key, binary, vendor)
    }

    #[test]
    fn binary_certificate_verifies_with_correct_hw_key() {
        let (ctrl, hw_key, binary, _) = controller();
        let cert = ctrl.binary_certificate();
        assert!(cert.verify(&hw_key, &binary.measurement()));
    }

    #[test]
    fn binary_certificate_rejects_wrong_key_or_binary() {
        let (ctrl, _, binary, _) = controller();
        let cert = ctrl.binary_certificate();
        assert!(!cert.verify(&HardwareKey([0x99; 32]), &binary.measurement()));
        let other = ControllerBinary::reference("2.0");
        let (_, hw_key, _, _) = controller();
        assert!(!cert.verify(&hw_key, &other.measurement()));
    }

    #[test]
    fn attestation_certificate_binds_nonce() {
        let (ctrl, hw_key, binary, _) = controller();
        let nonce = [0x55; 32];
        let cert = ctrl.certify(nonce);
        assert!(cert.verify(&hw_key, &binary.measurement(), &nonce));
        assert!(!cert.verify(&hw_key, &binary.measurement(), &[0x56; 32]));
    }

    #[test]
    fn attestation_certificate_signature_tamper_detected() {
        let (ctrl, hw_key, binary, _) = controller();
        let nonce = [0x55; 32];
        let mut cert = ctrl.certify(nonce);
        let mut sig = cert.signature.to_bytes();
        sig[0] ^= 1;
        cert.signature = Signature(sig);
        assert!(!cert.verify(&hw_key, &binary.measurement(), &nonce));
    }

    #[test]
    fn bitstream_installation_marks_provisioned() {
        let (mut ctrl, _, _, _) = controller();
        assert!(!ctrl.is_provisioned());
        assert_eq!(
            ctrl.bitstream_measurement(),
            Err(DeviceError::NotProvisioned)
        );
        ctrl.install_bitstream(b"tnic-bitstream-v1".to_vec());
        assert!(ctrl.is_provisioned());
        assert_eq!(
            ctrl.bitstream_measurement().unwrap(),
            sha256(b"tnic-bitstream-v1")
        );
    }

    #[test]
    fn debug_does_not_leak_hw_key() {
        let (ctrl, _, _, _) = controller();
        assert!(format!("{ctrl:?}").contains("redacted"));
    }
}
