//! The assembled TNIC device: attestation kernel + RoCE kernel + DMA + MAC +
//! ARP + registers + controller + resource model (paper Figure 2).

use crate::arp::ArpServer;
use crate::attestation::{
    AttestationKernel, AttestationStats, AttestationTiming, AttestedMessage, AttestedView,
    WIRE_OVERHEAD,
};
use crate::controller::{ControllerBinary, DeviceController, HardwareKey};
use crate::dma::{DmaEngine, DmaMode, DmaStats};
use crate::error::DeviceError;
use crate::mac::{EthernetMac, MacStats};
use crate::regs::{Register, RegisterFile};
use crate::resources::TnicResourceModel;
use crate::roce::packet::{RdmaOpcode, RocePacket};
use crate::roce::qp::CompletionEntry;
use crate::roce::transport::ReliableTransport;
use crate::types::{DeviceConfig, DeviceId, Ipv4Addr, MacAddr, QueuePairId, SessionId};
use tnic_crypto::ed25519::VerifyingKey;
use tnic_sim::time::{SimDuration, SimInstant};

/// Outcome of pushing a received packet through the device's reception path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiveOutcome {
    /// The verified attested message delivered to the host, if the packet was
    /// the next in-order data packet and its attestation verified.
    pub delivered: Option<AttestedMessage>,
    /// A response packet (ACK/NAK) to hand back to the fabric, if any.
    pub response: Option<RocePacket>,
    /// Time spent on the device data path for this packet.
    pub elapsed: SimDuration,
}

/// A full TNIC device instance.
#[derive(Debug, Clone)]
pub struct TnicDevice {
    config: DeviceConfig,
    attestation: AttestationKernel,
    transport: ReliableTransport,
    arp: ArpServer,
    mac: EthernetMac,
    dma: DmaEngine,
    regs: RegisterFile,
    controller: DeviceController,
    resources: TnicResourceModel,
}

impl TnicDevice {
    /// Creates a device with paper-calibrated timing and a booted controller.
    #[must_use]
    pub fn new(
        config: DeviceConfig,
        hw_key: HardwareKey,
        ip_vendor_public: VerifyingKey,
        controller_key_seed: [u8; 32],
    ) -> Self {
        let controller = DeviceController::boot(
            config.device_id,
            hw_key,
            ControllerBinary::reference("1.0"),
            ip_vendor_public,
            controller_key_seed,
        );
        let mut regs = RegisterFile::new();
        regs.write(
            Register::IpAddr,
            u32::from_be_bytes(config.ip_addr.0) as u64,
        );
        regs.write(Register::UdpPort, u64::from(config.udp_port));
        regs.write(Register::QsfpPort, u64::from(config.qsfp_port));
        regs.write(Register::Status, 0b01);
        TnicDevice {
            config,
            attestation: AttestationKernel::new(
                config.device_id,
                AttestationTiming::paper_calibrated(),
            ),
            transport: ReliableTransport::new(config),
            arp: ArpServer::new(),
            mac: EthernetMac::new_100g(),
            dma: DmaEngine::paper_calibrated(DmaMode::Asynchronous),
            regs,
            controller,
            resources: TnicResourceModel::single(),
        }
    }

    /// A convenience constructor for tests and examples: derives the hardware
    /// key and controller seed from the device id.
    #[must_use]
    pub fn for_tests(device_id: DeviceId, ip_vendor_public: VerifyingKey) -> Self {
        let mut hw = [0u8; 32];
        hw[..4].copy_from_slice(&device_id.0.to_le_bytes());
        let mut seed = [0xA5u8; 32];
        seed[..4].copy_from_slice(&device_id.0.to_le_bytes());
        TnicDevice::new(
            DeviceConfig::for_device(device_id),
            HardwareKey(hw),
            ip_vendor_public,
            seed,
        )
    }

    /// The static device configuration.
    #[must_use]
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The device identifier.
    #[must_use]
    pub fn id(&self) -> DeviceId {
        self.config.device_id
    }

    /// Mutable access to the device controller (used by the remote-attestation
    /// protocol).
    pub fn controller_mut(&mut self) -> &mut DeviceController {
        &mut self.controller
    }

    /// Shared access to the device controller.
    #[must_use]
    pub fn controller(&self) -> &DeviceController {
        &self.controller
    }

    /// The resource model describing this design instance.
    #[must_use]
    pub fn resources(&self) -> TnicResourceModel {
        self.resources
    }

    /// Reconfigures the design with `n` attestation kernels (Figure 13).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ResourceExhausted`] if the design no longer fits
    /// on the U280.
    pub fn set_attestation_kernels(&mut self, n: u64) -> Result<(), DeviceError> {
        let model = TnicResourceModel::with_attestation_kernels(n);
        if !model.utilization().fits() {
            return Err(DeviceError::ResourceExhausted("attestation kernels"));
        }
        self.resources = model;
        Ok(())
    }

    /// Switches the DMA transfer mode (synchronous for the stand-alone §8.1
    /// evaluation, asynchronous on the kernel-bypass data path).
    pub fn set_dma_mode(&mut self, mode: DmaMode) {
        self.dma.set_mode(mode);
    }

    /// Installs a session key in the attestation kernel and marks the device
    /// as provisioned once the controller has a bitstream.
    pub fn provision_session(&mut self, session: SessionId, key: [u8; 32]) {
        self.attestation.install_session_key(session, key);
        self.regs.write(Register::Status, 0b11);
    }

    /// Returns `true` if a key is installed for `session`.
    #[must_use]
    pub fn has_session(&self, session: SessionId) -> bool {
        self.attestation.has_session(session)
    }

    /// Adds an ARP mapping for a peer device.
    pub fn add_peer(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp.insert(ip, mac);
    }

    /// Creates a queue pair towards a remote endpoint.
    pub fn create_queue_pair(
        &mut self,
        local: QueuePairId,
        remote_ip: Ipv4Addr,
        remote_qp: QueuePairId,
    ) {
        self.transport
            .create_queue_pair(local, remote_ip, remote_qp);
    }

    /// `local_send()`: fetches the payload over DMA, attests it and returns
    /// the attested message without transmitting it (paper §6.1; also the
    /// §8.1 stand-alone `Attest()` evaluation path).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownSession`] if no key is installed.
    pub fn local_send(
        &mut self,
        session: SessionId,
        payload: &[u8],
    ) -> Result<(AttestedMessage, SimDuration), DeviceError> {
        let dma_in = self.dma.host_to_device(payload.len());
        let (message, hmac_cost) = self.attestation.attest(session, payload)?;
        let dma_out = self.dma.device_to_host(message.wire_len());
        Ok((message, dma_in + hmac_cost + dma_out))
    }

    /// `local_verify()`: verifies the cryptographic binding of an attested
    /// message without enforcing receive-counter order (paper §6.1).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadAttestation`] or [`DeviceError::UnknownSession`].
    pub fn local_verify(&mut self, message: &AttestedMessage) -> Result<SimDuration, DeviceError> {
        let dma_in = self.dma.host_to_device(message.wire_len());
        let cost = self.attestation.verify_binding(message)?;
        Ok(dma_in + cost)
    }

    /// The transmission data path (paper Figure 2, blue axes): DMA the payload
    /// from host memory, attest it, wrap it in a RoCE packet and serialise it
    /// through the 100G MAC. Returns the packet to inject into the fabric and
    /// the on-device latency.
    ///
    /// # Errors
    ///
    /// Propagates attestation, queue-pair and ARP errors.
    pub fn send_attested(
        &mut self,
        qp: QueuePairId,
        session: SessionId,
        payload: &[u8],
        now: SimInstant,
    ) -> Result<(RocePacket, SimDuration), DeviceError> {
        let dma = self.dma.host_to_device(payload.len());
        // Attest straight into the buffer that becomes the packet payload:
        // no intermediate `AttestedMessage` and no second serialisation pass.
        let mut wire = Vec::with_capacity(WIRE_OVERHEAD + payload.len());
        let hmac_cost = self.attestation.attest_into(session, payload, &mut wire)?;
        let remote_ip = self
            .transport
            .queue_pair(qp)
            .ok_or(DeviceError::UnknownQueuePair(qp))?
            .remote_ip;
        let dst_mac = self.arp.lookup(remote_ip)?;
        let packet = self
            .transport
            .send(qp, RdmaOpcode::Write, wire, dst_mac, now)?;
        let wire = self.mac.transmit(packet.wire_len());
        Ok((packet, dma + hmac_cost + wire))
    }

    /// The reception data path (paper Figure 2, red axes): parse the packet in
    /// the RoCE kernel, verify the attestation (MAC + counter) and DMA the
    /// verified message to host memory. Non-data packets (ACK/NAK) update the
    /// transport state instead.
    ///
    /// # Errors
    ///
    /// Returns an error if the attestation or counter check fails; transport
    /// errors propagate as well. A failed verification does **not** advance
    /// protocol state, so the poll() path never observes the message.
    pub fn receive_packet(
        &mut self,
        local_qp: QueuePairId,
        packet: &RocePacket,
        now: SimInstant,
    ) -> Result<ReceiveOutcome, DeviceError> {
        let mut elapsed = self.mac.transmit(0); // minimal RX MAC latency (fixed part)
        let (delivered_bytes, response) = self.transport.on_receive(local_qp, packet, now)?;
        let delivered = match delivered_bytes {
            None => None,
            Some(bytes) => {
                // Parse a borrowed view and verify before any payload copy:
                // rejected messages never allocate.
                let view = AttestedView::parse(&bytes)?;
                let verify_cost = self.attestation.verify_view(&view)?;
                let dma = self.dma.device_to_host(view.payload.len());
                elapsed += verify_cost + dma;
                Some(view.to_owned())
            }
        };
        Ok(ReceiveOutcome {
            delivered,
            response,
            elapsed,
        })
    }

    /// Packets whose retransmission timer expired.
    pub fn poll_retransmissions(&mut self, now: SimInstant) -> Vec<RocePacket> {
        self.transport.poll_retransmissions(now)
    }

    /// Completion entries available to the host `poll()` call.
    pub fn poll_completions(&mut self) -> Vec<CompletionEntry> {
        let completions = self.transport.take_completions();
        self.regs
            .write(Register::CompletionCount, completions.len() as u64);
        completions
    }

    /// Reads a control/status register (the mapped REG page access path).
    #[must_use]
    pub fn read_register(&self, reg: Register) -> u64 {
        self.regs.read(reg)
    }

    /// Writes a control/status register.
    pub fn write_register(&mut self, reg: Register, value: u64) {
        self.regs.write(reg, value);
    }

    /// Attestation-kernel statistics.
    #[must_use]
    pub fn attestation_stats(&self) -> AttestationStats {
        self.attestation.stats()
    }

    /// MAC statistics.
    #[must_use]
    pub fn mac_stats(&self) -> MacStats {
        self.mac.stats()
    }

    /// DMA statistics.
    #[must_use]
    pub fn dma_stats(&self) -> DmaStats {
        self.dma.stats()
    }

    /// Number of retransmitted packets.
    #[must_use]
    pub fn retransmissions(&self) -> u64 {
        self.transport.total_retransmissions()
    }

    /// The next send counter for `session` (used by application-level state
    /// simulation in the transformation recipe).
    #[must_use]
    pub fn peek_send_counter(&self, session: SessionId) -> u64 {
        self.attestation.peek_send_counter(session)
    }

    /// The next expected receive counter for `session`.
    #[must_use]
    pub fn expected_recv_counter(&self, session: SessionId) -> u64 {
        self.attestation.expected_recv_counter(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnic_crypto::ed25519::Keypair;

    fn device_pair() -> (TnicDevice, TnicDevice) {
        let vendor = Keypair::from_seed(&[1u8; 32]);
        let mut a = TnicDevice::for_tests(DeviceId(1), vendor.verifying);
        let mut b = TnicDevice::for_tests(DeviceId(2), vendor.verifying);
        let key = [7u8; 32];
        a.provision_session(SessionId(1), key);
        b.provision_session(SessionId(1), key);
        a.add_peer(b.config().ip_addr, b.config().mac_addr);
        b.add_peer(a.config().ip_addr, a.config().mac_addr);
        a.create_queue_pair(QueuePairId(1), b.config().ip_addr, QueuePairId(2));
        b.create_queue_pair(QueuePairId(2), a.config().ip_addr, QueuePairId(1));
        (a, b)
    }

    fn t(us: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_micros(us)
    }

    #[test]
    fn end_to_end_attested_send_receive() {
        let (mut a, mut b) = device_pair();
        let (packet, tx_cost) = a
            .send_attested(QueuePairId(1), SessionId(1), b"client request", t(0))
            .unwrap();
        assert!(tx_cost > SimDuration::ZERO);
        let outcome = b.receive_packet(QueuePairId(2), &packet, t(10)).unwrap();
        let delivered = outcome.delivered.expect("message delivered");
        assert_eq!(delivered.payload, b"client request");
        assert_eq!(delivered.device, DeviceId(1));
        assert_eq!(delivered.counter, 0);
        assert!(outcome.response.unwrap().is_ack());
    }

    #[test]
    fn tampered_packet_rejected_on_reception() {
        let (mut a, mut b) = device_pair();
        let (mut packet, _) = a
            .send_attested(QueuePairId(1), SessionId(1), b"payload", t(0))
            .unwrap();
        // Flip one byte of the attested payload inside the RoCE packet.
        let last = packet.payload.len() - 1;
        packet.payload[last] ^= 0xff;
        let err = b.receive_packet(QueuePairId(2), &packet, t(5)).unwrap_err();
        assert_eq!(err, DeviceError::BadAttestation);
    }

    #[test]
    fn replayed_packet_not_delivered_twice() {
        let (mut a, mut b) = device_pair();
        let (packet, _) = a
            .send_attested(QueuePairId(1), SessionId(1), b"once", t(0))
            .unwrap();
        let first = b.receive_packet(QueuePairId(2), &packet, t(1)).unwrap();
        assert!(first.delivered.is_some());
        // The RoCE layer treats it as a duplicate: re-ACK, no delivery, and
        // the attestation kernel is never consulted again.
        let second = b.receive_packet(QueuePairId(2), &packet, t(2)).unwrap();
        assert!(second.delivered.is_none());
        assert!(second.response.unwrap().is_ack());
    }

    #[test]
    fn local_send_verify_round_trip() {
        let (mut a, mut b) = device_pair();
        let (msg, cost) = a.local_send(SessionId(1), b"log entry").unwrap();
        assert!(cost > SimDuration::ZERO);
        b.local_verify(&msg).unwrap();
        // Binding verification can be repeated (log audits).
        b.local_verify(&msg).unwrap();
    }

    #[test]
    fn completions_after_ack_round_trip() {
        let (mut a, mut b) = device_pair();
        let (packet, _) = a
            .send_attested(QueuePairId(1), SessionId(1), b"m", t(0))
            .unwrap();
        let outcome = b.receive_packet(QueuePairId(2), &packet, t(1)).unwrap();
        let ack = outcome.response.unwrap();
        let ack_outcome = a.receive_packet(QueuePairId(1), &ack, t(2)).unwrap();
        assert!(ack_outcome.delivered.is_none());
        let completions = a.poll_completions();
        assert_eq!(completions.len(), 1);
        assert_eq!(a.read_register(Register::CompletionCount), 1);
    }

    #[test]
    fn unknown_session_and_qp_errors() {
        let (mut a, _) = device_pair();
        assert!(matches!(
            a.send_attested(QueuePairId(1), SessionId(99), b"x", t(0)),
            Err(DeviceError::UnknownSession(_))
        ));
        assert!(matches!(
            a.send_attested(QueuePairId(99), SessionId(1), b"x", t(0)),
            Err(DeviceError::UnknownQueuePair(_))
        ));
    }

    #[test]
    fn arp_miss_blocks_transmission() {
        let vendor = Keypair::from_seed(&[1u8; 32]);
        let mut a = TnicDevice::for_tests(DeviceId(1), vendor.verifying);
        a.provision_session(SessionId(1), [0u8; 32]);
        a.create_queue_pair(QueuePairId(1), Ipv4Addr::new(10, 0, 9, 9), QueuePairId(2));
        assert_eq!(
            a.send_attested(QueuePairId(1), SessionId(1), b"x", t(0))
                .unwrap_err(),
            DeviceError::ArpMiss
        );
    }

    #[test]
    fn resource_reconfiguration_respects_capacity() {
        let (mut a, _) = device_pair();
        a.set_attestation_kernels(32).unwrap();
        assert_eq!(a.resources().attestation_kernels, 32);
        assert!(a.set_attestation_kernels(64).is_err());
    }

    #[test]
    fn sync_dma_mode_costs_more() {
        let (mut a, _) = device_pair();
        let (_, async_cost) = a.local_send(SessionId(1), &[0u8; 64]).unwrap();
        a.set_dma_mode(DmaMode::Synchronous);
        let (_, sync_cost) = a.local_send(SessionId(1), &[0u8; 64]).unwrap();
        assert!(sync_cost > async_cost);
        // The synchronous path should land in the paper's ~23 µs ballpark.
        let us = sync_cost.as_micros_f64();
        assert!((18.0..=30.0).contains(&us), "sync Attest cost {us} us");
    }

    #[test]
    fn status_register_reflects_provisioning() {
        let vendor = Keypair::from_seed(&[1u8; 32]);
        let mut dev = TnicDevice::for_tests(DeviceId(9), vendor.verifying);
        assert_eq!(dev.read_register(Register::Status), 0b01);
        dev.provision_session(SessionId(1), [0u8; 32]);
        assert_eq!(dev.read_register(Register::Status), 0b11);
    }
}
