//! The PCIe DMA / bridge model (paper Figure 2, "PCIe DMA/Bridge IP").
//!
//! The attestation kernel sits between the RoCE kernel and the PCIe DMA engine
//! that moves payloads between host memory and the device. The paper's
//! latency breakdown (Figure 6) attributes roughly 16 µs of the 23 µs
//! synchronous `Attest()` round trip to device access and data transfer; this
//! module models exactly that cost and also provides a tiny host-memory
//! abstraction used by the ibv memory registration path.

use crate::error::DeviceError;
use serde::{Deserialize, Serialize};
use tnic_sim::latency::SizeDependentLatency;
use tnic_sim::time::SimDuration;

/// Transfer modes supported by the DMA engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DmaMode {
    /// Synchronous transfers as used in the stand-alone hardware evaluation
    /// (§8.1): each operation pays the full access + transfer cost.
    Synchronous,
    /// Asynchronous user-space DMA as used on the kernel-bypass data path
    /// (§5.2): the fixed access cost is largely hidden.
    Asynchronous,
}

/// A registered host-memory region eligible for DMA (the "ibv memory").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaRegion {
    data: Vec<u8>,
}

impl DmaRegion {
    /// Allocates a region of `len` zeroed bytes.
    #[must_use]
    pub fn new(len: usize) -> Self {
        DmaRegion {
            data: vec![0u8; len],
        }
    }

    /// Region length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the region has zero length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies `bytes` into the region at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::DmaOutOfBounds`] if the write exceeds the region.
    pub fn write(&mut self, offset: usize, bytes: &[u8]) -> Result<(), DeviceError> {
        let end = offset
            .checked_add(bytes.len())
            .ok_or(DeviceError::DmaOutOfBounds)?;
        if end > self.data.len() {
            return Err(DeviceError::DmaOutOfBounds);
        }
        self.data[offset..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads `len` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::DmaOutOfBounds`] if the read exceeds the region.
    pub fn read(&self, offset: usize, len: usize) -> Result<Vec<u8>, DeviceError> {
        let end = offset.checked_add(len).ok_or(DeviceError::DmaOutOfBounds)?;
        if end > self.data.len() {
            return Err(DeviceError::DmaOutOfBounds);
        }
        Ok(self.data[offset..end].to_vec())
    }
}

/// Statistics kept by the DMA engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaStats {
    /// Host-to-device transfers.
    pub h2d_transfers: u64,
    /// Device-to-host transfers.
    pub d2h_transfers: u64,
    /// Total bytes moved.
    pub bytes: u64,
}

/// The PCIe DMA engine: a timing model plus counters.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    mode: DmaMode,
    sync_cost: SizeDependentLatency,
    async_cost: SizeDependentLatency,
    stats: DmaStats,
}

impl DmaEngine {
    /// Creates a DMA engine calibrated to the paper's measurements: a
    /// synchronous round trip costs ~16 µs of access/transfer for small
    /// payloads (Figure 6), while the asynchronous kernel-bypass path costs a
    /// couple of microseconds of doorbell/DMA latency (§8.2's 5 µs RDMA-hw
    /// round trips imply ~2 µs per direction).
    #[must_use]
    pub fn paper_calibrated(mode: DmaMode) -> Self {
        DmaEngine {
            mode,
            sync_cost: SizeDependentLatency::new(SimDuration::from_micros(8), 0.35),
            async_cost: SizeDependentLatency::new(SimDuration::from_nanos(1_200), 0.012),
            stats: DmaStats::default(),
        }
    }

    /// The engine's current transfer mode.
    #[must_use]
    pub fn mode(&self) -> DmaMode {
        self.mode
    }

    /// Switches transfer mode.
    pub fn set_mode(&mut self, mode: DmaMode) {
        self.mode = mode;
    }

    fn cost(&self, bytes: usize) -> SimDuration {
        match self.mode {
            DmaMode::Synchronous => self.sync_cost.cost(bytes),
            DmaMode::Asynchronous => self.async_cost.cost(bytes),
        }
    }

    /// Accounts a host-to-device transfer of `bytes` bytes.
    pub fn host_to_device(&mut self, bytes: usize) -> SimDuration {
        self.stats.h2d_transfers += 1;
        self.stats.bytes += bytes as u64;
        self.cost(bytes)
    }

    /// Accounts a device-to-host transfer of `bytes` bytes.
    pub fn device_to_host(&mut self, bytes: usize) -> SimDuration {
        self.stats.d2h_transfers += 1;
        self.stats.bytes += bytes as u64;
        self.cost(bytes)
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> DmaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_read_write_round_trip() {
        let mut region = DmaRegion::new(64);
        assert_eq!(region.len(), 64);
        region.write(10, b"hello").unwrap();
        assert_eq!(region.read(10, 5).unwrap(), b"hello");
    }

    #[test]
    fn region_bounds_checked() {
        let mut region = DmaRegion::new(16);
        assert_eq!(
            region.write(12, b"too long"),
            Err(DeviceError::DmaOutOfBounds)
        );
        assert_eq!(region.read(10, 7), Err(DeviceError::DmaOutOfBounds));
        assert_eq!(region.read(usize::MAX, 2), Err(DeviceError::DmaOutOfBounds));
    }

    #[test]
    fn synchronous_mode_is_slower() {
        let mut sync = DmaEngine::paper_calibrated(DmaMode::Synchronous);
        let mut asy = DmaEngine::paper_calibrated(DmaMode::Asynchronous);
        assert!(sync.host_to_device(128) > asy.host_to_device(128));
    }

    #[test]
    fn paper_calibration_matches_figure6() {
        // The synchronous access+transfer cost for a 128 B payload should be
        // in the ~16 µs ballpark reported in Figure 6 (two directions).
        let mut dma = DmaEngine::paper_calibrated(DmaMode::Synchronous);
        let round_trip =
            dma.host_to_device(128).as_micros_f64() + dma.device_to_host(128).as_micros_f64();
        assert!((14.0..=20.0).contains(&round_trip), "got {round_trip}");
    }

    #[test]
    fn stats_accumulate() {
        let mut dma = DmaEngine::paper_calibrated(DmaMode::Asynchronous);
        dma.host_to_device(100);
        dma.device_to_host(50);
        let s = dma.stats();
        assert_eq!(s.h2d_transfers, 1);
        assert_eq!(s.d2h_transfers, 1);
        assert_eq!(s.bytes, 150);
    }
}
