//! Queue pair state, part of the RoCE kernel's state tables (paper §4.2).

use super::packet::RocePacket;
use crate::types::{Ipv4Addr, QueuePairId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tnic_sim::time::SimInstant;

/// An entry in the completion queue, signalled to the host when a message has
/// been transmitted and acknowledged, or received and verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletionEntry {
    /// The queue pair the completion belongs to.
    pub qp: QueuePairId,
    /// The message sequence number that completed.
    pub msn: u32,
    /// Virtual time of completion.
    pub at: SimInstant,
}

/// Per-connection protocol state: sequence numbers, retransmission buffer and
/// completion queue (the paper's "State tables").
#[derive(Debug, Clone)]
pub struct QueuePair {
    /// This queue pair's identifier.
    pub id: QueuePairId,
    /// The remote endpoint's IP address.
    pub remote_ip: Ipv4Addr,
    /// The remote queue pair number.
    pub remote_qp: QueuePairId,
    /// Next packet sequence number to assign on transmission.
    pub next_psn: u32,
    /// Next packet sequence number expected on reception.
    pub expected_psn: u32,
    /// Next message sequence number to assign on transmission.
    pub next_msn: u32,
    /// Packets sent but not yet acknowledged, keyed by PSN.
    pub unacked: BTreeMap<u32, RocePacket>,
    /// Deadline of the retransmission timer, if armed.
    pub retransmit_deadline: Option<SimInstant>,
    /// Completions not yet polled by the host.
    pub completions: Vec<CompletionEntry>,
    /// Count of retransmitted packets (statistics).
    pub retransmissions: u64,
}

impl QueuePair {
    /// Creates a fresh queue pair connected to `remote_ip`/`remote_qp`.
    #[must_use]
    pub fn new(id: QueuePairId, remote_ip: Ipv4Addr, remote_qp: QueuePairId) -> Self {
        QueuePair {
            id,
            remote_ip,
            remote_qp,
            next_psn: 0,
            expected_psn: 0,
            next_msn: 0,
            unacked: BTreeMap::new(),
            retransmit_deadline: None,
            completions: Vec::new(),
            retransmissions: 0,
        }
    }

    /// Number of packets awaiting acknowledgement.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Removes all packets with PSN `<= ack_psn` from the retransmission
    /// buffer (cumulative acknowledgement) and returns how many were removed.
    pub fn acknowledge_up_to(&mut self, ack_psn: u32) -> usize {
        let before = self.unacked.len();
        self.unacked.retain(|&psn, _| psn > ack_psn);
        let acked = before - self.unacked.len();
        if self.unacked.is_empty() {
            self.retransmit_deadline = None;
        }
        acked
    }

    /// Drains the pending completion entries.
    pub fn take_completions(&mut self) -> Vec<CompletionEntry> {
        std::mem::take(&mut self.completions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roce::packet::{PacketHeader, RdmaOpcode};
    use crate::types::{DeviceId, MacAddr};

    fn dummy_packet(psn: u32) -> RocePacket {
        RocePacket {
            header: PacketHeader {
                src_mac: MacAddr::from_device(DeviceId(1)),
                dst_mac: MacAddr::from_device(DeviceId(2)),
                src_ip: Ipv4Addr::from_device(DeviceId(1)),
                dst_ip: Ipv4Addr::from_device(DeviceId(2)),
                udp_port: 4791,
                opcode: RdmaOpcode::Write,
                qp: QueuePairId(5),
                psn,
                msn: psn,
                ack_psn: 0,
            },
            payload: vec![psn as u8],
        }
    }

    #[test]
    fn cumulative_ack_clears_buffer() {
        let mut qp = QueuePair::new(QueuePairId(5), Ipv4Addr::new(10, 0, 0, 2), QueuePairId(9));
        for psn in 0..4 {
            qp.unacked.insert(psn, dummy_packet(psn));
        }
        qp.retransmit_deadline = Some(SimInstant::from_nanos(100));
        assert_eq!(qp.in_flight(), 4);
        assert_eq!(qp.acknowledge_up_to(1), 2);
        assert_eq!(qp.in_flight(), 2);
        assert!(qp.retransmit_deadline.is_some());
        assert_eq!(qp.acknowledge_up_to(10), 2);
        assert_eq!(qp.in_flight(), 0);
        assert!(qp.retransmit_deadline.is_none());
    }

    #[test]
    fn completions_drain() {
        let mut qp = QueuePair::new(QueuePairId(1), Ipv4Addr::new(10, 0, 0, 2), QueuePairId(2));
        qp.completions.push(CompletionEntry {
            qp: QueuePairId(1),
            msn: 0,
            at: SimInstant::EPOCH,
        });
        assert_eq!(qp.take_completions().len(), 1);
        assert!(qp.take_completions().is_empty());
    }
}
