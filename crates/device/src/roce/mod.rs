//! The RoCE protocol kernel (paper §4.2).
//!
//! Implements a reliable transport service on top of the IB transport protocol
//! with UDP/IPv4 encapsulation (RoCE v2): queue pairs, packet/message sequence
//! numbers, cumulative acknowledgements, a retransmission timer and in-order
//! delivery. The reliability and FIFO properties of this layer are what allow
//! the attestation kernel's counters to guarantee that no message between two
//! correct nodes is lost or reordered (paper §8.5, "Message drops").

pub mod packet;
pub mod qp;
pub mod transport;

pub use packet::{PacketHeader, RdmaOpcode, RocePacket};
pub use qp::{CompletionEntry, QueuePair};
pub use transport::ReliableTransport;
