//! The reliable-connection transport of the RoCE kernel.
//!
//! Implements go-back-N style reliable, in-order delivery: every data packet
//! carries a packet sequence number (PSN); the receiver only delivers the
//! exact next expected PSN and acknowledges cumulatively; the sender buffers
//! unacknowledged packets and retransmits them when the retransmission timer
//! expires. Together with the attestation kernel's counters this provides the
//! FIFO, no-loss channel the paper's transformation relies on (§6.2, §8.5).

use super::packet::{PacketHeader, RdmaOpcode, RocePacket};
use super::qp::{CompletionEntry, QueuePair};
use crate::error::DeviceError;
use crate::types::{DeviceConfig, Ipv4Addr, MacAddr, QueuePairId};
use std::collections::HashMap;
use tnic_sim::time::{SimDuration, SimInstant};

/// Default retransmission timeout.
pub const DEFAULT_RETRANSMIT_TIMEOUT: SimDuration = SimDuration::from_micros(100);

/// The per-device reliable transport state machine.
#[derive(Debug, Clone)]
pub struct ReliableTransport {
    config: DeviceConfig,
    queue_pairs: HashMap<QueuePairId, QueuePair>,
    retransmit_timeout: SimDuration,
}

impl ReliableTransport {
    /// Creates a transport bound to the device configuration.
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        ReliableTransport {
            config,
            queue_pairs: HashMap::new(),
            retransmit_timeout: DEFAULT_RETRANSMIT_TIMEOUT,
        }
    }

    /// Overrides the retransmission timeout.
    pub fn set_retransmit_timeout(&mut self, timeout: SimDuration) {
        self.retransmit_timeout = timeout;
    }

    /// Creates a queue pair connected to a remote endpoint.
    pub fn create_queue_pair(
        &mut self,
        id: QueuePairId,
        remote_ip: Ipv4Addr,
        remote_qp: QueuePairId,
    ) {
        self.queue_pairs
            .insert(id, QueuePair::new(id, remote_ip, remote_qp));
    }

    /// Returns a reference to a queue pair, if it exists.
    #[must_use]
    pub fn queue_pair(&self, id: QueuePairId) -> Option<&QueuePair> {
        self.queue_pairs.get(&id)
    }

    fn qp_mut(&mut self, id: QueuePairId) -> Result<&mut QueuePair, DeviceError> {
        self.queue_pairs
            .get_mut(&id)
            .ok_or(DeviceError::UnknownQueuePair(id))
    }

    /// Builds, buffers and returns a data packet carrying `payload` on queue
    /// pair `qp`, arming the retransmission timer.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownQueuePair`] for an unknown queue pair.
    pub fn send(
        &mut self,
        qp_id: QueuePairId,
        opcode: RdmaOpcode,
        payload: Vec<u8>,
        dst_mac: MacAddr,
        now: SimInstant,
    ) -> Result<RocePacket, DeviceError> {
        let src_mac = self.config.mac_addr;
        let src_ip = self.config.ip_addr;
        let udp_port = self.config.udp_port;
        let timeout = self.retransmit_timeout;
        let qp = self.qp_mut(qp_id)?;
        let psn = qp.next_psn;
        qp.next_psn = qp.next_psn.wrapping_add(1);
        let msn = qp.next_msn;
        qp.next_msn = qp.next_msn.wrapping_add(1);
        let packet = RocePacket {
            header: PacketHeader {
                src_mac,
                dst_mac,
                src_ip,
                dst_ip: qp.remote_ip,
                udp_port,
                opcode,
                qp: qp.remote_qp,
                psn,
                msn,
                ack_psn: 0,
            },
            payload,
        };
        qp.unacked.insert(psn, packet.clone());
        if qp.retransmit_deadline.is_none() {
            qp.retransmit_deadline = Some(now + timeout);
        }
        Ok(packet)
    }

    /// Processes a received packet addressed to local queue pair `local_qp`.
    ///
    /// Returns `(delivered_payload, response_packet)`:
    /// * for in-order data packets the payload is delivered and a cumulative
    ///   ACK is produced;
    /// * for duplicate (already seen) data packets nothing is delivered but an
    ///   ACK is regenerated so the sender stops retransmitting;
    /// * for out-of-order (future) packets nothing is delivered and a NAK
    ///   carrying the last in-order PSN is produced;
    /// * for ACK/NAK packets the retransmission buffer is updated.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownQueuePair`] for an unknown queue pair.
    pub fn on_receive(
        &mut self,
        local_qp: QueuePairId,
        packet: &RocePacket,
        now: SimInstant,
    ) -> Result<(Option<Vec<u8>>, Option<RocePacket>), DeviceError> {
        let src_mac = self.config.mac_addr;
        let src_ip = self.config.ip_addr;
        let udp_port = self.config.udp_port;
        let qp = self.qp_mut(local_qp)?;
        match packet.header.opcode {
            RdmaOpcode::Ack => {
                qp.acknowledge_up_to(packet.header.ack_psn);
                qp.completions.push(CompletionEntry {
                    qp: local_qp,
                    msn: packet.header.msn,
                    at: now,
                });
                Ok((None, None))
            }
            RdmaOpcode::Nak => {
                // Go-back-N: the receiver is missing packets starting at
                // `ack_psn`; expire the timer so everything unacknowledged is
                // retransmitted promptly.
                if !qp.unacked.is_empty() {
                    qp.retransmit_deadline = Some(now);
                }
                Ok((None, None))
            }
            _ => {
                let psn = packet.header.psn;
                let make_response = |opcode: RdmaOpcode, ack_psn: u32, msn: u32| RocePacket {
                    header: PacketHeader {
                        src_mac,
                        dst_mac: packet.header.src_mac,
                        src_ip,
                        dst_ip: packet.header.src_ip,
                        udp_port,
                        opcode,
                        qp: packet.header.qp,
                        psn: 0,
                        msn,
                        ack_psn,
                    },
                    payload: Vec::new(),
                };
                if psn == qp.expected_psn {
                    qp.expected_psn = qp.expected_psn.wrapping_add(1);
                    let ack = make_response(RdmaOpcode::Ack, psn, packet.header.msn);
                    Ok((Some(packet.payload.clone()), Some(ack)))
                } else if psn < qp.expected_psn {
                    // Duplicate: re-acknowledge but do not deliver twice.
                    let ack =
                        make_response(RdmaOpcode::Ack, qp.expected_psn - 1, packet.header.msn);
                    Ok((None, Some(ack)))
                } else {
                    // Gap: negative-acknowledge, reporting the first missing PSN.
                    let nak = make_response(RdmaOpcode::Nak, qp.expected_psn, packet.header.msn);
                    Ok((None, Some(nak)))
                }
            }
        }
    }

    /// Returns the packets whose retransmission timer has expired at `now`,
    /// re-arming the timer.
    pub fn poll_retransmissions(&mut self, now: SimInstant) -> Vec<RocePacket> {
        let timeout = self.retransmit_timeout;
        let mut out = Vec::new();
        for qp in self.queue_pairs.values_mut() {
            if let Some(deadline) = qp.retransmit_deadline {
                if deadline <= now && !qp.unacked.is_empty() {
                    out.extend(qp.unacked.values().cloned());
                    qp.retransmissions += qp.unacked.len() as u64;
                    qp.retransmit_deadline = Some(now + timeout);
                }
            }
        }
        out
    }

    /// Drains completion entries across all queue pairs (what `poll()`
    /// ultimately reads).
    pub fn take_completions(&mut self) -> Vec<CompletionEntry> {
        let mut out = Vec::new();
        for qp in self.queue_pairs.values_mut() {
            out.extend(qp.take_completions());
        }
        out.sort_by_key(|c| c.at);
        out
    }

    /// Total number of retransmitted packets across all queue pairs.
    #[must_use]
    pub fn total_retransmissions(&self) -> u64 {
        self.queue_pairs.values().map(|qp| qp.retransmissions).sum()
    }

    /// The device configuration this transport uses.
    #[must_use]
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DeviceId;

    fn pair() -> (ReliableTransport, ReliableTransport) {
        let a_cfg = DeviceConfig::for_device(DeviceId(1));
        let b_cfg = DeviceConfig::for_device(DeviceId(2));
        let mut a = ReliableTransport::new(a_cfg);
        let mut b = ReliableTransport::new(b_cfg);
        a.create_queue_pair(QueuePairId(1), b_cfg.ip_addr, QueuePairId(2));
        b.create_queue_pair(QueuePairId(2), a_cfg.ip_addr, QueuePairId(1));
        (a, b)
    }

    fn now(us: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_micros(us)
    }

    #[test]
    fn in_order_delivery_with_acks() {
        let (mut a, mut b) = pair();
        let dst = MacAddr::from_device(DeviceId(2));
        let p0 = a
            .send(
                QueuePairId(1),
                RdmaOpcode::Write,
                b"m0".to_vec(),
                dst,
                now(0),
            )
            .unwrap();
        let p1 = a
            .send(
                QueuePairId(1),
                RdmaOpcode::Write,
                b"m1".to_vec(),
                dst,
                now(1),
            )
            .unwrap();
        let (d0, ack0) = b.on_receive(QueuePairId(2), &p0, now(2)).unwrap();
        assert_eq!(d0.unwrap(), b"m0");
        let (d1, _ack1) = b.on_receive(QueuePairId(2), &p1, now(3)).unwrap();
        assert_eq!(d1.unwrap(), b"m1");
        // Deliver first ack to a: one packet acked.
        a.on_receive(QueuePairId(1), &ack0.unwrap(), now(4))
            .unwrap();
        assert_eq!(a.queue_pair(QueuePairId(1)).unwrap().in_flight(), 1);
    }

    #[test]
    fn out_of_order_packet_is_not_delivered() {
        let (mut a, mut b) = pair();
        let dst = MacAddr::from_device(DeviceId(2));
        let _p0 = a
            .send(
                QueuePairId(1),
                RdmaOpcode::Write,
                b"m0".to_vec(),
                dst,
                now(0),
            )
            .unwrap();
        let p1 = a
            .send(
                QueuePairId(1),
                RdmaOpcode::Write,
                b"m1".to_vec(),
                dst,
                now(1),
            )
            .unwrap();
        let (delivered, response) = b.on_receive(QueuePairId(2), &p1, now(2)).unwrap();
        assert!(delivered.is_none());
        assert_eq!(response.unwrap().header.opcode, RdmaOpcode::Nak);
    }

    #[test]
    fn duplicate_packet_reacked_but_not_redelivered() {
        let (mut a, mut b) = pair();
        let dst = MacAddr::from_device(DeviceId(2));
        let p0 = a
            .send(
                QueuePairId(1),
                RdmaOpcode::Write,
                b"m0".to_vec(),
                dst,
                now(0),
            )
            .unwrap();
        let (d, _) = b.on_receive(QueuePairId(2), &p0, now(1)).unwrap();
        assert!(d.is_some());
        let (d2, ack) = b.on_receive(QueuePairId(2), &p0, now(2)).unwrap();
        assert!(d2.is_none());
        assert_eq!(ack.unwrap().header.opcode, RdmaOpcode::Ack);
    }

    #[test]
    fn lost_packet_recovered_by_retransmission() {
        let (mut a, mut b) = pair();
        let dst = MacAddr::from_device(DeviceId(2));
        let p0 = a
            .send(
                QueuePairId(1),
                RdmaOpcode::Write,
                b"m0".to_vec(),
                dst,
                now(0),
            )
            .unwrap();
        // p0 is "lost": never delivered to b. Timer expires, retransmit.
        assert!(
            a.poll_retransmissions(now(50)).is_empty(),
            "timer not yet expired"
        );
        let retx = a.poll_retransmissions(now(150));
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0], p0);
        let (d, ack) = b.on_receive(QueuePairId(2), &retx[0], now(151)).unwrap();
        assert_eq!(d.unwrap(), b"m0");
        a.on_receive(QueuePairId(1), &ack.unwrap(), now(152))
            .unwrap();
        assert_eq!(a.queue_pair(QueuePairId(1)).unwrap().in_flight(), 0);
        assert_eq!(a.total_retransmissions(), 1);
    }

    #[test]
    fn nak_triggers_fast_retransmission() {
        let (mut a, mut b) = pair();
        let dst = MacAddr::from_device(DeviceId(2));
        let p0 = a
            .send(
                QueuePairId(1),
                RdmaOpcode::Write,
                b"m0".to_vec(),
                dst,
                now(0),
            )
            .unwrap();
        let p1 = a
            .send(
                QueuePairId(1),
                RdmaOpcode::Write,
                b"m1".to_vec(),
                dst,
                now(0),
            )
            .unwrap();
        // p0 lost; p1 arrives and generates a NAK.
        let (_, nak) = b.on_receive(QueuePairId(2), &p1, now(1)).unwrap();
        a.on_receive(QueuePairId(1), &nak.unwrap(), now(2)).unwrap();
        // NAK sets the deadline to "now", so retransmission happens immediately.
        let retx = a.poll_retransmissions(now(2));
        assert_eq!(retx.len(), 2);
        let (d0, _) = b.on_receive(QueuePairId(2), &p0, now(3)).unwrap();
        assert_eq!(d0.unwrap(), b"m0");
        let (d1, _) = b.on_receive(QueuePairId(2), &p1, now(4)).unwrap();
        assert_eq!(d1.unwrap(), b"m1");
    }

    #[test]
    fn completions_signalled_on_ack() {
        let (mut a, mut b) = pair();
        let dst = MacAddr::from_device(DeviceId(2));
        let p0 = a
            .send(
                QueuePairId(1),
                RdmaOpcode::Write,
                b"m0".to_vec(),
                dst,
                now(0),
            )
            .unwrap();
        let (_, ack) = b.on_receive(QueuePairId(2), &p0, now(1)).unwrap();
        a.on_receive(QueuePairId(1), &ack.unwrap(), now(2)).unwrap();
        let completions = a.take_completions();
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].qp, QueuePairId(1));
    }

    #[test]
    fn unknown_queue_pair_errors() {
        let (mut a, _) = pair();
        let err = a
            .send(
                QueuePairId(99),
                RdmaOpcode::Write,
                vec![],
                MacAddr::BROADCAST,
                now(0),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            DeviceError::UnknownQueuePair(QueuePairId(99))
        ));
    }
}
