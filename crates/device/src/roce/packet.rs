//! RoCE v2 packet formats: Ethernet + UDP/IPv4 + IB base transport header.

use crate::types::{Ipv4Addr, MacAddr, QueuePairId};
use serde::{Deserialize, Serialize};

/// RDMA operation codes supported by the TNIC RoCE kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RdmaOpcode {
    /// One-sided RDMA write (used by `auth_send`/`rem_write`).
    Write,
    /// One-sided RDMA read request (used by `rem_read`).
    Read,
    /// Response carrying data for a previous read request.
    ReadResponse,
    /// Two-sided send.
    Send,
    /// Cumulative acknowledgement.
    Ack,
    /// Negative acknowledgement (out-of-sequence PSN).
    Nak,
}

impl RdmaOpcode {
    /// Returns `true` for opcodes that carry application payload.
    #[must_use]
    pub fn carries_payload(self) -> bool {
        matches!(
            self,
            RdmaOpcode::Write | RdmaOpcode::Send | RdmaOpcode::ReadResponse
        )
    }
}

/// The combined header the RoCE kernel prepends to each packet: link-layer
/// addresses, UDP/IPv4 addressing and the IB base transport header fields
/// (opcode, destination queue pair, packet and message sequence numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketHeader {
    /// Source MAC address (filled from the ARP/device configuration).
    pub src_mac: MacAddr,
    /// Destination MAC address (resolved through the ARP server).
    pub dst_mac: MacAddr,
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Destination UDP port (4791 for RoCE v2).
    pub udp_port: u16,
    /// Operation code.
    pub opcode: RdmaOpcode,
    /// Destination queue pair.
    pub qp: QueuePairId,
    /// Packet sequence number.
    pub psn: u32,
    /// Message sequence number.
    pub msn: u32,
    /// For ACK/NAK packets: the cumulative PSN being acknowledged.
    pub ack_psn: u32,
}

/// Size in bytes of the protocol headers modelled on the wire
/// (14 B Ethernet + 20 B IPv4 + 8 B UDP + 12 B BTH + 4 B iCRC).
pub const HEADER_WIRE_LEN: usize = 58;

/// A RoCE packet: headers plus (possibly attested) payload bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RocePacket {
    /// The packet headers.
    pub header: PacketHeader,
    /// The payload carried by the packet (already extended by the attestation
    /// kernel on the transmission path).
    pub payload: Vec<u8>,
}

impl RocePacket {
    /// Total bytes this packet occupies on the wire.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        HEADER_WIRE_LEN + self.payload.len()
    }

    /// Returns `true` if this is an acknowledgement (positive or negative).
    #[must_use]
    pub fn is_ack(&self) -> bool {
        matches!(self.header.opcode, RdmaOpcode::Ack | RdmaOpcode::Nak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DeviceId;

    fn header(opcode: RdmaOpcode, psn: u32) -> PacketHeader {
        PacketHeader {
            src_mac: MacAddr::from_device(DeviceId(1)),
            dst_mac: MacAddr::from_device(DeviceId(2)),
            src_ip: Ipv4Addr::from_device(DeviceId(1)),
            dst_ip: Ipv4Addr::from_device(DeviceId(2)),
            udp_port: 4791,
            opcode,
            qp: QueuePairId(1),
            psn,
            msn: 0,
            ack_psn: 0,
        }
    }

    #[test]
    fn wire_len_includes_headers() {
        let p = RocePacket {
            header: header(RdmaOpcode::Write, 0),
            payload: vec![0u8; 100],
        };
        assert_eq!(p.wire_len(), 158);
    }

    #[test]
    fn opcode_classification() {
        assert!(RdmaOpcode::Write.carries_payload());
        assert!(RdmaOpcode::Send.carries_payload());
        assert!(!RdmaOpcode::Ack.carries_payload());
        let ack = RocePacket {
            header: header(RdmaOpcode::Ack, 3),
            payload: vec![],
        };
        assert!(ack.is_ack());
        let data = RocePacket {
            header: header(RdmaOpcode::Write, 3),
            payload: vec![1],
        };
        assert!(!data.is_ack());
    }
}
