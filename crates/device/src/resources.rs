//! FPGA resource model (paper §8.4, Table 5 and Figure 13).
//!
//! The paper reports post-synthesis utilisation of the TNIC design on an
//! Alveo U280 and shows that only the attestation kernel needs to be
//! replicated per connection group, bounding the design at 32 attestation
//! kernels per card. This module reproduces that accounting analytically.

use serde::{Deserialize, Serialize};

/// Resource usage of a hardware module in absolute units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// 36 Kb block RAMs.
    pub ramb36: u64,
}

impl ResourceUsage {
    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut + other.lut,
            ff: self.ff + other.ff,
            ramb36: self.ramb36 + other.ramb36,
        }
    }

    /// Component-wise scaling.
    #[must_use]
    pub fn times(self, n: u64) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut * n,
            ff: self.ff * n,
            ramb36: self.ramb36 * n,
        }
    }
}

/// Capacity of the Alveo U280 card used in the paper (Table 5, first row).
pub const U280_CAPACITY: ResourceUsage = ResourceUsage {
    lut: 1_303_680,
    ff: 2_607_360,
    ramb36: 2_016,
};

/// XDMA (PCIe DMA bridge) usage, Table 5.
pub const XDMA_USAGE: ResourceUsage = ResourceUsage {
    lut: 48_258,
    ff: 50_701,
    ramb36: 64,
};

/// Attestation kernel usage, Table 5.
pub const ATTESTATION_KERNEL_USAGE: ResourceUsage = ResourceUsage {
    lut: 34_138,
    ff: 56_914,
    ramb36: 81,
};

/// RoCE protocol kernel usage, Table 5.
pub const ROCE_KERNEL_USAGE: ResourceUsage = ResourceUsage {
    lut: 30_379,
    ff: 75_804,
    ramb36: 46,
};

/// 100G CMAC usage, Table 5.
pub const CMAC_USAGE: ResourceUsage = ResourceUsage {
    lut: 1_484,
    ff: 3_433,
    ramb36: 0,
};

/// Shell / platform overhead so that the single-kernel total matches the
/// paper's full-design row (TNIC: 216 905 LUTs, 423 891 FFs, 335 RAMB36).
pub const SHELL_USAGE: ResourceUsage = ResourceUsage {
    lut: 102_646,
    ff: 237_039,
    ramb36: 144,
};

/// Block-RAM cost of each *additional* attestation kernel instance beyond the
/// first. The keystore/counter BRAM banks are provisioned once and shared
/// across instances, so replicas mostly add logic (LUT/FF); this reproduces
/// the Figure 13 scaling in which the design becomes LUT-bound at 32 kernels.
pub const ATTESTATION_KERNEL_INCREMENTAL_RAMB36: u64 = 40;

/// Lines of HLS/HDL code in the attestation kernel — the entire TNIC TCB
/// (paper Table 4).
pub const ATTESTATION_KERNEL_TCB_LOC: u64 = 2_114;

/// Utilisation of one resource class as a percentage of the U280 capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// LUT utilisation, percent.
    pub lut_pct: f64,
    /// Flip-flop utilisation, percent.
    pub ff_pct: f64,
    /// RAMB36 utilisation, percent.
    pub ramb36_pct: f64,
}

impl Utilization {
    /// The highest utilisation across resource classes.
    #[must_use]
    pub fn max_pct(&self) -> f64 {
        self.lut_pct.max(self.ff_pct).max(self.ramb36_pct)
    }

    /// Whether the design fits on the card.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.max_pct() <= 100.0
    }
}

/// Analytic resource model of a TNIC design with a configurable number of
/// attestation kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TnicResourceModel {
    /// Number of attestation kernel instances (one per connection group).
    pub attestation_kernels: u64,
}

impl TnicResourceModel {
    /// A design with a single attestation kernel (the paper's Table 5 row).
    #[must_use]
    pub fn single() -> Self {
        TnicResourceModel {
            attestation_kernels: 1,
        }
    }

    /// A design with `n` attestation kernels (Figure 13 sweeps 1–32).
    #[must_use]
    pub fn with_attestation_kernels(n: u64) -> Self {
        TnicResourceModel {
            attestation_kernels: n.max(1),
        }
    }

    /// Total usage: XDMA, CMAC and the RoCE kernel are shared; only the
    /// attestation kernel replicates per connection group. Additional kernel
    /// instances add full logic but reduced block RAM (see
    /// [`ATTESTATION_KERNEL_INCREMENTAL_RAMB36`]).
    #[must_use]
    pub fn usage(&self) -> ResourceUsage {
        let extra = self.attestation_kernels - 1;
        let extra_kernels = ResourceUsage {
            lut: ATTESTATION_KERNEL_USAGE.lut,
            ff: ATTESTATION_KERNEL_USAGE.ff,
            ramb36: ATTESTATION_KERNEL_INCREMENTAL_RAMB36,
        }
        .times(extra);
        SHELL_USAGE
            .plus(XDMA_USAGE)
            .plus(ROCE_KERNEL_USAGE)
            .plus(CMAC_USAGE)
            .plus(ATTESTATION_KERNEL_USAGE)
            .plus(extra_kernels)
    }

    /// Utilisation relative to the U280.
    #[must_use]
    pub fn utilization(&self) -> Utilization {
        let u = self.usage();
        Utilization {
            lut_pct: u.lut as f64 / U280_CAPACITY.lut as f64 * 100.0,
            ff_pct: u.ff as f64 / U280_CAPACITY.ff as f64 * 100.0,
            ramb36_pct: u.ramb36 as f64 / U280_CAPACITY.ramb36 as f64 * 100.0,
        }
    }

    /// The largest number of attestation kernels that fits on a U280 — the
    /// paper concludes 32 concurrent connections per card (§8.4).
    #[must_use]
    pub fn max_kernels_on_u280() -> u64 {
        let mut n = 1;
        while TnicResourceModel::with_attestation_kernels(n + 1)
            .utilization()
            .fits()
        {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_kernel_matches_table5_totals() {
        let usage = TnicResourceModel::single().usage();
        assert_eq!(usage.lut, 216_905);
        assert_eq!(usage.ff, 423_891);
        assert_eq!(usage.ramb36, 335);
    }

    #[test]
    fn single_kernel_utilization_matches_table5_percentages() {
        let u = TnicResourceModel::single().utilization();
        assert!((u.lut_pct - 16.6).abs() < 0.1, "lut {}", u.lut_pct);
        assert!((u.ff_pct - 16.3).abs() < 0.1, "ff {}", u.ff_pct);
        assert!((u.ramb36_pct - 16.6).abs() < 0.1, "bram {}", u.ramb36_pct);
    }

    #[test]
    fn attestation_kernel_share_is_comparable_to_other_modules() {
        // Paper: the attestation kernel's utilisation is comparable with XDMA
        // and RoCE (2.6 % LUTs).
        let pct = ATTESTATION_KERNEL_USAGE.lut as f64 / U280_CAPACITY.lut as f64 * 100.0;
        assert!((pct - 2.6).abs() < 0.1);
    }

    #[test]
    fn scaling_supports_about_32_kernels() {
        let max = TnicResourceModel::max_kernels_on_u280();
        assert_eq!(max, 32, "paper §8.4: up to 32 concurrent connections");
        assert!(TnicResourceModel::with_attestation_kernels(max)
            .utilization()
            .fits());
        assert!(!TnicResourceModel::with_attestation_kernels(max + 1)
            .utilization()
            .fits());
    }

    #[test]
    fn usage_grows_linearly_with_kernels() {
        let one = TnicResourceModel::with_attestation_kernels(1).usage();
        let two = TnicResourceModel::with_attestation_kernels(2).usage();
        assert_eq!(two.lut - one.lut, ATTESTATION_KERNEL_USAGE.lut);
        assert_eq!(two.ff - one.ff, ATTESTATION_KERNEL_USAGE.ff);
    }

    #[test]
    fn zero_kernels_clamped_to_one() {
        assert_eq!(
            TnicResourceModel::with_attestation_kernels(0).attestation_kernels,
            1
        );
    }
}
