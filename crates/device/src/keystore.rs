//! The attestation kernel's key store (paper §4.1).
//!
//! The system designer initialises each TNIC device during bootstrapping with
//! a unique identifier and one shared secret key per session, stored in static
//! on-chip memory. The keys never leave the device; the untrusted host only
//! refers to them by [`SessionId`].

use crate::error::DeviceError;
use crate::types::SessionId;
use std::collections::HashMap;

/// Per-session symmetric keys held in (simulated) on-chip static memory.
#[derive(Clone, Default)]
pub struct Keystore {
    keys: HashMap<SessionId, [u8; 32]>,
}

impl std::fmt::Debug for Keystore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Key material must never be printed.
        f.debug_struct("Keystore")
            .field("sessions", &self.keys.len())
            .finish()
    }
}

impl Keystore {
    /// Creates an empty key store.
    #[must_use]
    pub fn new() -> Self {
        Keystore {
            keys: HashMap::new(),
        }
    }

    /// Installs (or replaces) the key for `session`.
    pub fn install(&mut self, session: SessionId, key: [u8; 32]) {
        self.keys.insert(session, key);
    }

    /// Removes the key for `session`, returning `true` if one was present.
    pub fn remove(&mut self, session: SessionId) -> bool {
        self.keys.remove(&session).is_some()
    }

    /// Looks up the key for `session`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownSession`] if no key is installed.
    pub fn key(&self, session: SessionId) -> Result<&[u8; 32], DeviceError> {
        self.keys
            .get(&session)
            .ok_or(DeviceError::UnknownSession(session))
    }

    /// Returns `true` if a key is installed for `session`.
    #[must_use]
    pub fn contains(&self, session: SessionId) -> bool {
        self.keys.contains_key(&session)
    }

    /// Number of installed session keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` if no keys are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sessions with installed keys, in unspecified order.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionId> {
        self.keys.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_lookup_remove() {
        let mut ks = Keystore::new();
        assert!(ks.is_empty());
        ks.install(SessionId(1), [7u8; 32]);
        assert!(ks.contains(SessionId(1)));
        assert_eq!(ks.key(SessionId(1)).unwrap(), &[7u8; 32]);
        assert_eq!(ks.len(), 1);
        assert!(ks.remove(SessionId(1)));
        assert!(!ks.remove(SessionId(1)));
        assert_eq!(
            ks.key(SessionId(1)),
            Err(DeviceError::UnknownSession(SessionId(1)))
        );
    }

    #[test]
    fn reinstall_replaces_key() {
        let mut ks = Keystore::new();
        ks.install(SessionId(2), [1u8; 32]);
        ks.install(SessionId(2), [2u8; 32]);
        assert_eq!(ks.key(SessionId(2)).unwrap(), &[2u8; 32]);
        assert_eq!(ks.len(), 1);
    }

    #[test]
    fn debug_never_prints_keys() {
        let mut ks = Keystore::new();
        ks.install(SessionId(3), [0xAB; 32]);
        let s = format!("{ks:?}");
        assert!(!s.contains("171") && !s.to_lowercase().contains("ab, ab"));
        assert!(s.contains("sessions"));
    }

    #[test]
    fn sessions_lists_installed() {
        let mut ks = Keystore::new();
        ks.install(SessionId(1), [0u8; 32]);
        ks.install(SessionId(9), [0u8; 32]);
        let mut s = ks.sessions();
        s.sort();
        assert_eq!(s, vec![SessionId(1), SessionId(9)]);
    }
}
