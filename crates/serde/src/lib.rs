//! Offline stand-in for the real `serde` facade crate.
//!
//! The build environment cannot reach crates.io, so this crate satisfies the
//! `use serde::{Deserialize, Serialize};` imports found throughout the
//! workspace. It re-exports the no-op derive macros from the vendored
//! `serde_derive` and declares inert marker traits under the same names
//! (macros and traits live in separate namespaces, exactly like the real
//! serde facade). Nothing in the workspace calls a serialisation framework;
//! replacing this shim with the real serde is a manifest-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Inert counterpart of `serde::Serialize`; never implemented or required.
pub trait Serialize {}

/// Inert counterpart of `serde::Deserialize`; never implemented or required.
pub trait Deserialize<'de> {}
