//! Statistics utilities used by the benchmark harness: online mean/variance,
//! latency histograms with percentiles, and throughput meters.

use crate::time::{SimDuration, SimInstant};
use serde::{Deserialize, Serialize};

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds a duration observation, in microseconds.
    pub fn record_duration(&mut self, value: SimDuration) {
        self.record(value.as_micros_f64());
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (0 for an empty accumulator).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 for an empty accumulator).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A latency histogram storing raw samples in microseconds.
///
/// The paper reports average and occasionally tail behaviour (Figure 7); we
/// keep all samples (experiments are short) so exact percentiles can be
/// reported.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples_us: Vec<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            samples_us: Vec::new(),
        }
    }

    /// Records a duration sample.
    pub fn record(&mut self, value: SimDuration) {
        self.samples_us.push(value.as_micros_f64());
    }

    /// Records a raw microsecond sample.
    pub fn record_us(&mut self, value_us: f64) {
        self.samples_us.push(value_us);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Returns `true` if the histogram has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Mean latency in microseconds.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.samples_us.is_empty() {
            0.0
        } else {
            self.samples_us.iter().sum::<f64>() / self.samples_us.len() as f64
        }
    }

    /// The `q`-quantile (0.0–1.0) in microseconds, by nearest-rank.
    #[must_use]
    pub fn percentile_us(&self, q: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    /// Median latency in microseconds.
    #[must_use]
    pub fn median_us(&self) -> f64 {
        self.percentile_us(0.5)
    }

    /// Maximum latency in microseconds.
    #[must_use]
    pub fn max_us(&self) -> f64 {
        self.samples_us.iter().copied().fold(0.0, f64::max)
    }

    /// Raw samples (time-ordered), used for Figure 7 style plots.
    #[must_use]
    pub fn samples_us(&self) -> &[f64] {
        &self.samples_us
    }
}

/// Counts completed operations over a span of virtual time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputMeter {
    started_at: SimInstant,
    operations: u64,
    bytes: u64,
}

impl ThroughputMeter {
    /// Creates a meter starting at `start`.
    #[must_use]
    pub fn new(start: SimInstant) -> Self {
        ThroughputMeter {
            started_at: start,
            operations: 0,
            bytes: 0,
        }
    }

    /// Records one completed operation carrying `bytes` bytes of payload.
    pub fn record(&mut self, bytes: u64) {
        self.operations += 1;
        self.bytes += bytes;
    }

    /// Number of completed operations.
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Operations per second of virtual time elapsed until `now`.
    #[must_use]
    pub fn ops_per_sec(&self, now: SimInstant) -> f64 {
        let elapsed = now.duration_since(self.started_at).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.operations as f64 / elapsed
        }
    }

    /// Payload megabytes per second of virtual time elapsed until `now`.
    #[must_use]
    pub fn mbytes_per_sec(&self, now: SimInstant) -> f64 {
        let elapsed = now.duration_since(self.started_at).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1_000_000.0 / elapsed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_duration() {
        let mut s = OnlineStats::new();
        s.record_duration(SimDuration::from_micros(10));
        s.record_duration(SimDuration::from_micros(20));
        assert!((s.mean() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        for i in 1..=100u64 {
            h.record(SimDuration::from_micros(i));
        }
        assert_eq!(h.len(), 100);
        assert!((h.mean_us() - 50.5).abs() < 1e-9);
        assert_eq!(h.median_us(), 51.0);
        assert_eq!(h.percentile_us(0.99), 99.0);
        assert_eq!(h.percentile_us(1.0), 100.0);
        assert_eq!(h.max_us(), 100.0);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.percentile_us(0.5), 0.0);
    }

    #[test]
    fn throughput_meter() {
        let start = SimInstant::EPOCH;
        let mut m = ThroughputMeter::new(start);
        for _ in 0..1000 {
            m.record(128);
        }
        let now = start + SimDuration::from_millis(100);
        assert_eq!(m.operations(), 1000);
        assert!((m.ops_per_sec(now) - 10_000.0).abs() < 1e-6);
        assert!((m.mbytes_per_sec(now) - 1.28).abs() < 1e-6);
        assert_eq!(m.ops_per_sec(start), 0.0);
    }
}
