//! Statistics utilities used by the benchmark harness: online mean/variance,
//! latency histograms with percentiles, and throughput meters.

use crate::time::{SimDuration, SimInstant};
use serde::{Deserialize, Serialize};

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds a duration observation, in microseconds.
    pub fn record_duration(&mut self, value: SimDuration) {
        self.record(value.as_micros_f64());
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (0 for an empty accumulator).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 for an empty accumulator).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A latency histogram storing raw samples in microseconds.
///
/// The paper reports average and occasionally tail behaviour (Figure 7); we
/// keep all samples (experiments are short) so exact percentiles can be
/// reported.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples_us: Vec<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            samples_us: Vec::new(),
        }
    }

    /// Records a duration sample.
    pub fn record(&mut self, value: SimDuration) {
        self.record_us(value.as_micros_f64());
    }

    /// Records a raw microsecond sample.
    ///
    /// Non-finite samples saturate instead of poisoning the percentile
    /// computation: `+∞` (an overflowed duration computation) is clamped to
    /// `f64::MAX`, `-∞` to 0, and NaN is dropped.
    pub fn record_us(&mut self, value_us: f64) {
        if value_us.is_nan() {
            return;
        }
        self.samples_us.push(value_us.clamp(0.0, f64::MAX));
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Returns `true` if the histogram has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Mean latency in microseconds.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.samples_us.is_empty() {
            0.0
        } else {
            self.samples_us.iter().sum::<f64>() / self.samples_us.len() as f64
        }
    }

    /// The `q`-quantile (0.0–1.0) in microseconds, by nearest-rank.
    ///
    /// Total-order comparison makes the sort panic-free even for data
    /// recorded before the saturating [`Histogram::record_us`] existed; a
    /// NaN quantile is treated as 1.0 (the most conservative tail).
    #[must_use]
    pub fn percentile_us(&self, q: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let q = if q.is_nan() { 1.0 } else { q.clamp(0.0, 1.0) };
        let mut sorted = self.samples_us.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median latency in microseconds.
    #[must_use]
    pub fn median_us(&self) -> f64 {
        self.percentile_us(0.5)
    }

    /// Maximum latency in microseconds.
    #[must_use]
    pub fn max_us(&self) -> f64 {
        self.samples_us.iter().copied().fold(0.0, f64::max)
    }

    /// Raw samples (time-ordered), used for Figure 7 style plots.
    #[must_use]
    pub fn samples_us(&self) -> &[f64] {
        &self.samples_us
    }
}

/// A fixed-memory latency histogram with power-of-two microsecond buckets.
///
/// Unlike [`Histogram`], which keeps every raw sample, this form is bounded:
/// 64 buckets where bucket `i` covers `[2^(i-1), 2^i)` µs (bucket 0 covers
/// `< 1` µs). Samples beyond the last bucket **saturate** into it instead of
/// overflowing, so a single absurd outlier cannot corrupt the distribution.
/// Long-running recorders (the observability layer) use this; short
/// experiments keep the exact [`Histogram`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundedHistogram {
    buckets: [u64; BoundedHistogram::BUCKETS],
    count: u64,
    sum_us: f64,
}

impl Default for BoundedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl BoundedHistogram {
    /// Number of buckets (fixed).
    pub const BUCKETS: usize = 64;

    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        BoundedHistogram {
            buckets: [0; Self::BUCKETS],
            count: 0,
            sum_us: 0.0,
        }
    }

    fn bucket_index(value_us: f64) -> usize {
        if value_us < 1.0 {
            return 0;
        }
        // log2 bucket; anything past the top bucket saturates into it.
        let exp = value_us.log2().floor() as i64 + 1;
        usize::try_from(exp.max(0))
            .unwrap_or(Self::BUCKETS - 1)
            .min(Self::BUCKETS - 1)
    }

    /// Upper bound (exclusive) of bucket `i`, in microseconds. The last
    /// bucket is unbounded and reports `f64::INFINITY`.
    #[must_use]
    pub fn bucket_limit_us(i: usize) -> f64 {
        if i + 1 >= Self::BUCKETS {
            f64::INFINITY
        } else {
            (2.0f64).powi(i as i32)
        }
    }

    /// Records a microsecond sample. NaN samples are dropped; negative and
    /// infinite samples saturate into the first / last bucket.
    pub fn record_us(&mut self, value_us: f64) {
        if value_us.is_nan() {
            return;
        }
        let value_us = value_us.max(0.0);
        let index = if value_us.is_infinite() {
            Self::BUCKETS - 1
        } else {
            Self::bucket_index(value_us)
        };
        self.buckets[index] = self.buckets[index].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum_us += if value_us.is_finite() { value_us } else { 0.0 };
    }

    /// Records a duration sample.
    pub fn record(&mut self, value: SimDuration) {
        self.record_us(value.as_micros_f64());
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Returns `true` if the histogram has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0 when empty; saturated infinite
    /// samples contribute 0 to the sum).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// The `q`-quantile upper bound in microseconds, by cumulative bucket
    /// count (0 when empty). Reported as the exclusive upper limit of the
    /// bucket holding the rank, so it is an upper bound on the true value.
    #[must_use]
    pub fn percentile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 1.0 } else { q.clamp(0.0, 1.0) };
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if n > 0 && seen > rank {
                return Self::bucket_limit_us(i);
            }
        }
        Self::bucket_limit_us(Self::BUCKETS - 1)
    }

    /// Raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; Self::BUCKETS] {
        &self.buckets
    }
}

/// Counts completed operations over a span of virtual time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputMeter {
    started_at: SimInstant,
    operations: u64,
    bytes: u64,
}

impl ThroughputMeter {
    /// Creates a meter starting at `start`.
    #[must_use]
    pub fn new(start: SimInstant) -> Self {
        ThroughputMeter {
            started_at: start,
            operations: 0,
            bytes: 0,
        }
    }

    /// Records one completed operation carrying `bytes` bytes of payload.
    pub fn record(&mut self, bytes: u64) {
        self.operations += 1;
        self.bytes += bytes;
    }

    /// Number of completed operations.
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Operations per second of virtual time elapsed until `now`.
    #[must_use]
    pub fn ops_per_sec(&self, now: SimInstant) -> f64 {
        let elapsed = now.duration_since(self.started_at).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.operations as f64 / elapsed
        }
    }

    /// Payload megabytes per second of virtual time elapsed until `now`.
    #[must_use]
    pub fn mbytes_per_sec(&self, now: SimInstant) -> f64 {
        let elapsed = now.duration_since(self.started_at).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1_000_000.0 / elapsed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.std_dev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_duration() {
        let mut s = OnlineStats::new();
        s.record_duration(SimDuration::from_micros(10));
        s.record_duration(SimDuration::from_micros(20));
        assert!((s.mean() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        for i in 1..=100u64 {
            h.record(SimDuration::from_micros(i));
        }
        assert_eq!(h.len(), 100);
        assert!((h.mean_us() - 50.5).abs() < 1e-9);
        assert_eq!(h.median_us(), 51.0);
        assert_eq!(h.percentile_us(0.99), 99.0);
        assert_eq!(h.percentile_us(1.0), 100.0);
        assert_eq!(h.max_us(), 100.0);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.percentile_us(0.5), 0.0);
        assert_eq!(h.percentile_us(0.99), 0.0);
        assert_eq!(h.percentile_us(1.0), 0.0);
        assert_eq!(h.max_us(), 0.0);
    }

    #[test]
    fn histogram_single_sample_all_percentiles() {
        let mut h = Histogram::new();
        h.record_us(42.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile_us(q), 42.0, "q={q}");
        }
        assert_eq!(h.median_us(), 42.0);
        assert_eq!(h.mean_us(), 42.0);
    }

    #[test]
    fn histogram_saturates_non_finite_samples() {
        let mut h = Histogram::new();
        h.record_us(f64::NAN); // dropped
        h.record_us(f64::INFINITY); // clamped to f64::MAX
        h.record_us(f64::NEG_INFINITY); // clamped to 0
        h.record_us(-5.0); // clamped to 0
        h.record_us(10.0);
        assert_eq!(h.len(), 4);
        assert_eq!(h.percentile_us(0.0), 0.0);
        assert_eq!(h.percentile_us(1.0), f64::MAX);
        // The sort no longer panics and out-of-range quantiles clamp.
        assert_eq!(h.percentile_us(7.0), f64::MAX);
        assert_eq!(h.percentile_us(-3.0), 0.0);
        assert_eq!(h.percentile_us(f64::NAN), f64::MAX);
    }

    #[test]
    fn bounded_histogram_empty_and_single_sample() {
        let mut h = BoundedHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile_us(0.99), 0.0);
        assert_eq!(h.mean_us(), 0.0);
        h.record_us(100.0);
        assert_eq!(h.len(), 1);
        // 100 µs lands in the [64, 128) bucket; the reported p99 is the
        // bucket's upper bound.
        assert_eq!(h.percentile_us(0.99), 128.0);
        assert_eq!(h.percentile_us(0.0), 128.0);
        assert_eq!(h.mean_us(), 100.0);
    }

    #[test]
    fn bounded_histogram_saturating_bucket_overflow() {
        let mut h = BoundedHistogram::new();
        h.record_us(f64::INFINITY);
        h.record_us(1e300); // far past the top bucket
        h.record_us(f64::NAN); // dropped
        h.record_us(-1.0); // clamps into bucket 0
        assert_eq!(h.len(), 3);
        let buckets = h.buckets();
        assert_eq!(buckets[BoundedHistogram::BUCKETS - 1], 2);
        assert_eq!(buckets[0], 1);
        assert_eq!(h.percentile_us(1.0), f64::INFINITY);
        assert_eq!(h.percentile_us(0.0), BoundedHistogram::bucket_limit_us(0));
    }

    #[test]
    fn bounded_histogram_percentiles_track_exact() {
        let mut exact = Histogram::new();
        let mut bounded = BoundedHistogram::new();
        for i in 1..=1000u64 {
            exact.record(SimDuration::from_micros(i));
            bounded.record(SimDuration::from_micros(i));
        }
        // The bounded p99 upper bound must bracket the exact p99.
        let p99 = exact.percentile_us(0.99);
        let bound = bounded.percentile_us(0.99);
        assert!(bound >= p99, "bound {bound} < exact {p99}");
        assert!(bound <= p99 * 2.0, "log2 bucket bound too loose: {bound}");
    }

    #[test]
    fn throughput_meter() {
        let start = SimInstant::EPOCH;
        let mut m = ThroughputMeter::new(start);
        for _ in 0..1000 {
            m.record(128);
        }
        let now = start + SimDuration::from_millis(100);
        assert_eq!(m.operations(), 1000);
        assert!((m.ops_per_sec(now) - 10_000.0).abs() < 1e-6);
        assert!((m.mbytes_per_sec(now) - 1.28).abs() < 1e-6);
        assert_eq!(m.ops_per_sec(start), 0.0);
    }
}
