//! A minimal discrete-event queue.
//!
//! Protocol simulations (the BFT, chain-replication and PeerReview harnesses)
//! schedule message deliveries and timer expirations as events ordered by
//! virtual time. Ties are broken by insertion order so runs are deterministic.

use crate::time::SimInstant;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimInstant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering so the BinaryHeap (a max-heap) pops the earliest
        // event first; ties resolved by insertion sequence.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
///
/// # Example
///
/// ```
/// use tnic_sim::event::EventQueue;
/// use tnic_sim::time::SimInstant;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimInstant::from_nanos(20), "b");
/// q.schedule(SimInstant::from_nanos(10), "a");
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b");
/// assert!(q.is_empty());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at virtual time `at`.
    pub fn schedule(&mut self, at: SimInstant, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimInstant, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Returns the time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimInstant> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::from_nanos(30), 3);
        q.schedule(SimInstant::from_nanos(10), 1);
        q.schedule(SimInstant::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimInstant::from_nanos(5);
        q.schedule(t, "first");
        q.schedule(t, "second");
        q.schedule(t, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
        q.schedule(SimInstant::EPOCH + SimDuration::from_micros(1), ());
        q.schedule(SimInstant::EPOCH + SimDuration::from_micros(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time().unwrap().as_micros(), 1);
    }

    #[test]
    fn debug_shows_pending_count() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::EPOCH, 1u8);
        assert!(format!("{q:?}").contains("pending"));
    }
}
