//! A shareable virtual clock.

use crate::time::{SimDuration, SimInstant};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A virtual clock shared by all components of a simulation.
///
/// Cloning is cheap; clones observe and advance the same underlying time.
///
/// # Example
///
/// ```
/// use tnic_sim::clock::SimClock;
/// use tnic_sim::time::SimDuration;
///
/// let clock = SimClock::new();
/// let device_view = clock.clone();
/// clock.advance(SimDuration::from_micros(5));
/// assert_eq!(device_view.now().as_micros(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at the epoch.
    #[must_use]
    pub fn new() -> Self {
        SimClock {
            nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Returns the current virtual time.
    #[must_use]
    pub fn now(&self) -> SimInstant {
        SimInstant::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    /// Advances the clock by `duration` and returns the new time.
    pub fn advance(&self, duration: SimDuration) -> SimInstant {
        let new = self.nanos.fetch_add(duration.as_nanos(), Ordering::SeqCst) + duration.as_nanos();
        SimInstant::from_nanos(new)
    }

    /// Moves the clock forward to `instant` if it is in the future; otherwise
    /// leaves it unchanged. Returns the (possibly unchanged) current time.
    pub fn advance_to(&self, instant: SimInstant) -> SimInstant {
        let target = instant.as_nanos();
        let mut current = self.nanos.load(Ordering::SeqCst);
        while current < target {
            match self
                .nanos
                .compare_exchange(current, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return instant,
                Err(observed) => current = observed,
            }
        }
        SimInstant::from_nanos(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_epoch() {
        assert_eq!(SimClock::new().now(), SimInstant::EPOCH);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(SimDuration::from_micros(3));
        c.advance(SimDuration::from_micros(4));
        assert_eq!(c.now().as_micros(), 7);
    }

    #[test]
    fn clones_share_time() {
        let c = SimClock::new();
        let c2 = c.clone();
        c2.advance(SimDuration::from_nanos(10));
        assert_eq!(c.now().as_nanos(), 10);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let c = SimClock::new();
        c.advance(SimDuration::from_micros(10));
        c.advance_to(SimInstant::from_nanos(5_000));
        assert_eq!(c.now().as_micros(), 10);
        c.advance_to(SimInstant::from_nanos(20_000));
        assert_eq!(c.now().as_micros(), 20);
    }
}
