//! Virtual time: nanosecond-resolution instants and durations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of virtual time with nanosecond resolution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from a floating-point number of microseconds.
    #[must_use]
    pub fn from_micros_f64(micros: f64) -> Self {
        SimDuration((micros.max(0.0) * 1_000.0).round() as u64)
    }

    /// The duration in whole nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in whole microseconds (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration as fractional microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A point in virtual time, measured from the start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The simulation epoch (time zero).
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Creates an instant at `nanos` nanoseconds from the epoch.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimInstant(nanos)
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        assert!(earlier.0 <= self.0, "duration_since with a later instant");
        SimDuration(self.0 - earlier.0)
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_nanos())
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration::from_nanos(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimDuration::from_micros_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(3);
        assert_eq!((a + b).as_micros(), 13);
        assert_eq!((a - b).as_micros(), 7);
        assert_eq!((a * 4).as_micros(), 40);
        assert_eq!((a / 2).as_micros(), 5);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn instants() {
        let start = SimInstant::EPOCH;
        let later = start + SimDuration::from_micros(7);
        assert_eq!(later.duration_since(start).as_micros(), 7);
        assert!(later > start);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn duration_since_panics_when_reversed() {
        let start = SimInstant::EPOCH;
        let later = start + SimDuration::from_nanos(1);
        let _ = start.duration_since(later);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimDuration::from_micros(23).to_string(), "23.00us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert!(SimInstant::EPOCH.to_string().starts_with("t+"));
    }
}
