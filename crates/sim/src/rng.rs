//! A small deterministic PRNG (xoshiro256** seeded via SplitMix64).
//!
//! Experiments in this repository must be reproducible from a single seed, so
//! all stochastic behaviour (latency jitter, packet loss, workload generation)
//! goes through this generator rather than an OS entropy source.

/// Deterministic pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Simple rejection-free mapping; bias is negligible for our purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Samples a normally distributed value via the Box–Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Samples an exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Returns a random 32-byte array (e.g. a key seed or nonce material).
    pub fn bytes32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill_bytes(&mut out);
        out
    }

    /// Chooses a random element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let idx = self.next_below(slice.len() as u64) as usize;
            Some(&slice[idx])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::new(11);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn normal_mean_is_roughly_right() {
        let mut rng = DetRng::new(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.normal(50.0, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = DetRng::new(13);
        for _ in 0..1000 {
            assert!(rng.exponential(10.0) >= 0.0);
        }
    }

    #[test]
    fn fill_bytes_and_choose() {
        let mut rng = DetRng::new(17);
        let b = rng.bytes32();
        assert_ne!(b, [0u8; 32]);
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        DetRng::new(0).next_below(0);
    }
}
