//! Discrete-event simulation substrate for the TNIC reproduction.
//!
//! The original TNIC evaluation runs on Alveo U280 FPGAs, 100 Gbps links and
//! SGX/SEV machines. None of that hardware is required here: every hardware
//! component is modelled as a functional unit whose *timing* is drawn from a
//! calibrated latency model and accounted against a virtual clock. This crate
//! provides the shared machinery:
//!
//! * [`time`] — nanosecond-resolution virtual instants and durations.
//! * [`clock`] — a shareable virtual clock.
//! * [`rng`] — a small deterministic PRNG (`SplitMix64`/`xoshiro256**`) so
//!   every experiment is reproducible from a seed.
//! * [`latency`] — latency models (constant, uniform, normal, spiking) used to
//!   emulate device access, TEE world switches and network propagation.
//! * [`event`] — a discrete-event queue for protocol simulations.
//! * [`stats`] — online statistics, histograms and throughput meters used by
//!   the benchmark harness to report the paper's tables and figures.
//!
//! # Example
//!
//! ```
//! use tnic_sim::clock::SimClock;
//! use tnic_sim::latency::LatencyModel;
//! use tnic_sim::rng::DetRng;
//! use tnic_sim::time::SimDuration;
//!
//! let clock = SimClock::new();
//! let model = LatencyModel::constant(SimDuration::from_micros(23));
//! let mut rng = DetRng::new(42);
//! clock.advance(model.sample(&mut rng));
//! assert_eq!(clock.now().as_micros(), 23);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod latency;
pub mod rng;
pub mod stats;
pub mod time;

pub use clock::SimClock;
pub use latency::LatencyModel;
pub use rng::DetRng;
pub use stats::{Histogram, OnlineStats, ThroughputMeter};
pub use time::{SimDuration, SimInstant};
