//! Latency models used to emulate hardware and software delays.
//!
//! The TNIC evaluation (paper §8.1) measures component latencies such as the
//! ~23 µs TNIC `Attest()` round trip, the ~45/90 µs SGX/SEV invocations, and
//! the occasional multi-hundred-microsecond scheduling spikes the authors
//! observed inside scone-based enclaves (Figure 7). These models let the rest
//! of the workspace charge such delays against the virtual clock.

use crate::rng::DetRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A stochastic latency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Always the same delay.
    Constant {
        /// The fixed delay.
        value: SimDuration,
    },
    /// Uniformly distributed in `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: SimDuration,
        /// Upper bound (inclusive).
        hi: SimDuration,
    },
    /// Normally distributed (truncated at zero).
    Normal {
        /// Mean delay in microseconds.
        mean_us: f64,
        /// Standard deviation in microseconds.
        std_us: f64,
    },
    /// A base distribution with occasional large spikes, modelling the
    /// scheduling and exitless-syscall artefacts observed inside SGX/scone
    /// (paper Figure 7) and AMD-SEV.
    Spiky {
        /// Mean of the non-spike delay in microseconds.
        base_mean_us: f64,
        /// Standard deviation of the non-spike delay in microseconds.
        base_std_us: f64,
        /// Probability that a sample is a spike.
        spike_probability: f64,
        /// Lower bound of spike magnitude in microseconds.
        spike_min_us: f64,
        /// Upper bound of spike magnitude in microseconds.
        spike_max_us: f64,
    },
}

impl LatencyModel {
    /// A constant-delay model.
    #[must_use]
    pub fn constant(value: SimDuration) -> Self {
        LatencyModel::Constant { value }
    }

    /// A uniform model over `[lo, hi]`.
    #[must_use]
    pub fn uniform(lo: SimDuration, hi: SimDuration) -> Self {
        assert!(lo <= hi, "uniform latency bounds reversed");
        LatencyModel::Uniform { lo, hi }
    }

    /// A normal (Gaussian) model specified in microseconds.
    #[must_use]
    pub fn normal_us(mean_us: f64, std_us: f64) -> Self {
        LatencyModel::Normal { mean_us, std_us }
    }

    /// A spiky model specified in microseconds.
    #[must_use]
    pub fn spiky_us(
        base_mean_us: f64,
        base_std_us: f64,
        spike_probability: f64,
        spike_min_us: f64,
        spike_max_us: f64,
    ) -> Self {
        LatencyModel::Spiky {
            base_mean_us,
            base_std_us,
            spike_probability,
            spike_min_us,
            spike_max_us,
        }
    }

    /// A zero-delay model.
    #[must_use]
    pub fn zero() -> Self {
        LatencyModel::Constant {
            value: SimDuration::ZERO,
        }
    }

    /// Draws one latency sample.
    #[must_use]
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match self {
            LatencyModel::Constant { value } => *value,
            LatencyModel::Uniform { lo, hi } => {
                if lo == hi {
                    *lo
                } else {
                    SimDuration::from_nanos(rng.range(lo.as_nanos(), hi.as_nanos() + 1))
                }
            }
            LatencyModel::Normal { mean_us, std_us } => {
                SimDuration::from_micros_f64(rng.normal(*mean_us, *std_us).max(0.0))
            }
            LatencyModel::Spiky {
                base_mean_us,
                base_std_us,
                spike_probability,
                spike_min_us,
                spike_max_us,
            } => {
                if rng.chance(*spike_probability) {
                    let span = (spike_max_us - spike_min_us).max(0.0);
                    SimDuration::from_micros_f64(spike_min_us + rng.next_f64() * span)
                } else {
                    SimDuration::from_micros_f64(rng.normal(*base_mean_us, *base_std_us).max(0.0))
                }
            }
        }
    }

    /// The mean of the model (useful for analytic throughput estimates).
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        match self {
            LatencyModel::Constant { value } => *value,
            LatencyModel::Uniform { lo, hi } => {
                SimDuration::from_nanos((lo.as_nanos() + hi.as_nanos()) / 2)
            }
            LatencyModel::Normal { mean_us, .. } => SimDuration::from_micros_f64(*mean_us),
            LatencyModel::Spiky {
                base_mean_us,
                spike_probability,
                spike_min_us,
                spike_max_us,
                ..
            } => {
                let spike_mean = (spike_min_us + spike_max_us) / 2.0;
                SimDuration::from_micros_f64(
                    base_mean_us * (1.0 - spike_probability) + spike_mean * spike_probability,
                )
            }
        }
    }
}

/// A latency model that depends on the transferred payload size: a fixed
/// per-operation cost plus a per-byte cost. Used for DMA transfers, HMAC
/// computation (which the paper notes cannot be parallelised, §8.2) and wire
/// serialisation at 100 Gbps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeDependentLatency {
    /// Fixed cost charged per operation.
    pub base: SimDuration,
    /// Additional cost per byte, in nanoseconds (fractional).
    pub per_byte_ns: f64,
}

impl SizeDependentLatency {
    /// Creates a model with the given fixed and per-byte costs.
    #[must_use]
    pub fn new(base: SimDuration, per_byte_ns: f64) -> Self {
        SizeDependentLatency { base, per_byte_ns }
    }

    /// Cost of processing `bytes` bytes.
    #[must_use]
    pub fn cost(&self, bytes: usize) -> SimDuration {
        self.base + SimDuration::from_nanos((self.per_byte_ns * bytes as f64).round() as u64)
    }

    /// A model describing serialisation at the given line rate (bits/second).
    #[must_use]
    pub fn from_line_rate_gbps(base: SimDuration, gbps: f64) -> Self {
        // per-byte ns = 8 bits / (gbps * 1e9 bits/s) * 1e9 ns/s
        SizeDependentLatency {
            base,
            per_byte_ns: 8.0 / gbps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model() {
        let m = LatencyModel::constant(SimDuration::from_micros(23));
        let mut rng = DetRng::new(1);
        assert_eq!(m.sample(&mut rng).as_micros(), 23);
        assert_eq!(m.mean().as_micros(), 23);
    }

    #[test]
    fn uniform_model_in_bounds() {
        let m = LatencyModel::uniform(SimDuration::from_micros(5), SimDuration::from_micros(10));
        let mut rng = DetRng::new(2);
        for _ in 0..1000 {
            let s = m.sample(&mut rng).as_micros();
            assert!((5..=10).contains(&s));
        }
        assert_eq!(m.mean().as_micros(), 7);
    }

    #[test]
    fn normal_model_never_negative() {
        let m = LatencyModel::normal_us(2.0, 5.0);
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            // would be negative ~35% of the time without clamping
            let _ = m.sample(&mut rng);
        }
    }

    #[test]
    fn spiky_model_produces_spikes() {
        let m = LatencyModel::spiky_us(45.0, 2.0, 0.05, 200.0, 500.0);
        let mut rng = DetRng::new(4);
        let samples: Vec<u64> = (0..2000).map(|_| m.sample(&mut rng).as_micros()).collect();
        let spikes = samples.iter().filter(|&&s| s >= 200).count();
        assert!(spikes > 20, "expected spikes, got {spikes}");
        assert!(spikes < 400, "too many spikes: {spikes}");
        let baseline = samples.iter().filter(|&&s| s < 60).count();
        assert!(baseline > 1500);
    }

    #[test]
    fn spiky_mean_between_base_and_spike() {
        let m = LatencyModel::spiky_us(45.0, 2.0, 0.1, 200.0, 400.0);
        let mean = m.mean().as_micros_f64();
        assert!(mean > 45.0 && mean < 200.0, "mean {mean}");
    }

    #[test]
    fn size_dependent_cost_scales() {
        let m = SizeDependentLatency::new(SimDuration::from_micros(1), 2.0);
        assert_eq!(m.cost(0).as_micros(), 1);
        assert_eq!(m.cost(1000).as_nanos(), 1_000 + 2_000);
        let line = SizeDependentLatency::from_line_rate_gbps(SimDuration::ZERO, 100.0);
        // 1 KiB at 100 Gbps is ~82 ns.
        let c = line.cost(1024).as_nanos();
        assert!((80..=84).contains(&c), "got {c}");
    }

    #[test]
    #[should_panic(expected = "bounds reversed")]
    fn uniform_reversed_bounds_panic() {
        let _ = LatencyModel::uniform(SimDuration::from_micros(2), SimDuration::from_micros(1));
    }
}
