//! The TNIC driver (paper §5.1).
//!
//! The driver is invoked at device initialisation — before remote attestation
//! — to program the static configuration (MAC address, QSFP port, IP address)
//! and to map the device's control/status registers into the application's
//! address space as one page per device (`/dev/fpga<ID>`).

use crate::regs::MappedRegsPage;
use parking_lot::Mutex;
use std::sync::Arc;
use tnic_device::device::TnicDevice;
use tnic_device::regs::Register;

/// A device shared between the driver, the mapped register page and the ibv
/// library (all user-space components of the same host).
pub type SharedDevice = Arc<Mutex<TnicDevice>>;

/// The TNIC kernel driver.
#[derive(Debug)]
pub struct TnicDriver {
    device: SharedDevice,
    pseudo_device_path: String,
}

impl TnicDriver {
    /// Probes a device: writes the static configuration into the device
    /// registers and registers the pseudo-device node.
    #[must_use]
    pub fn probe(device: TnicDevice) -> Self {
        let path = format!("/dev/fpga{}", device.id().0);
        let shared: SharedDevice = Arc::new(Mutex::new(device));
        {
            let mut dev = shared.lock();
            let cfg = *dev.config();
            let mut mac = [0u8; 8];
            mac[..6].copy_from_slice(&cfg.mac_addr.0);
            dev.write_register(Register::MacAddr, u64::from_le_bytes(mac));
            dev.write_register(
                Register::IpAddr,
                u64::from(u32::from_be_bytes(cfg.ip_addr.0)),
            );
            dev.write_register(Register::UdpPort, u64::from(cfg.udp_port));
            dev.write_register(Register::QsfpPort, u64::from(cfg.qsfp_port));
            dev.write_register(Register::Control, 1);
        }
        TnicDriver {
            device: shared,
            pseudo_device_path: path,
        }
    }

    /// The `/dev/fpga<ID>` path under which the device is exposed.
    #[must_use]
    pub fn pseudo_device_path(&self) -> &str {
        &self.pseudo_device_path
    }

    /// Maps the device's register page into user space (the kernel-bypass
    /// control path). Multiple mappings can coexist; isolation is enforced by
    /// the OS library's locking.
    #[must_use]
    pub fn map_regs(&self) -> MappedRegsPage {
        MappedRegsPage::new(Arc::clone(&self.device), self.pseudo_device_path.clone())
    }

    /// A handle to the underlying shared device.
    #[must_use]
    pub fn device(&self) -> SharedDevice {
        Arc::clone(&self.device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnic_crypto::ed25519::Keypair;
    use tnic_device::types::DeviceId;

    fn test_device(id: u32) -> TnicDevice {
        let vendor = Keypair::from_seed(&[1u8; 32]);
        TnicDevice::for_tests(DeviceId(id), vendor.verifying)
    }

    #[test]
    fn probe_writes_static_configuration() {
        let driver = TnicDriver::probe(test_device(3));
        assert_eq!(driver.pseudo_device_path(), "/dev/fpga3");
        let dev = driver.device();
        let dev = dev.lock();
        assert_eq!(dev.read_register(Register::Control), 1);
        assert_eq!(dev.read_register(Register::UdpPort), 4791);
        assert_ne!(dev.read_register(Register::MacAddr), 0);
        assert_ne!(dev.read_register(Register::IpAddr), 0);
    }

    #[test]
    fn mapped_page_shares_the_device() {
        let driver = TnicDriver::probe(test_device(4));
        let regs = driver.map_regs();
        regs.write(Register::RequestLen, 77);
        assert_eq!(
            driver.device().lock().read_register(Register::RequestLen),
            77
        );
    }
}
