//! Mapped REG pages (paper §5.1).
//!
//! TNIC reserves one page per connected device; reads and writes to the page
//! are reads and writes of the device's control and status registers, letting
//! applications drive the control path without entering the kernel.

use crate::driver::SharedDevice;
use tnic_device::regs::Register;

/// Size of the mapped register page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// A user-space mapping of one device's register page.
#[derive(Debug, Clone)]
pub struct MappedRegsPage {
    device: SharedDevice,
    path: String,
}

impl MappedRegsPage {
    /// Creates a mapping backed by `device`, exposed under `path`.
    #[must_use]
    pub fn new(device: SharedDevice, path: String) -> Self {
        MappedRegsPage { device, path }
    }

    /// The pseudo-device path this mapping came from.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Reads a control/status register.
    #[must_use]
    pub fn read(&self, reg: Register) -> u64 {
        self.device.lock().read_register(reg)
    }

    /// Writes a control/status register.
    pub fn write(&self, reg: Register, value: u64) {
        self.device.lock().write_register(reg, value);
    }

    /// The underlying shared device (used by the ibv library's data path).
    #[must_use]
    pub fn device(&self) -> SharedDevice {
        self.device.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use tnic_crypto::ed25519::Keypair;
    use tnic_device::device::TnicDevice;
    use tnic_device::types::DeviceId;

    #[test]
    fn read_write_round_trip() {
        let vendor = Keypair::from_seed(&[1u8; 32]);
        let device = Arc::new(Mutex::new(TnicDevice::for_tests(
            DeviceId(1),
            vendor.verifying,
        )));
        let page = MappedRegsPage::new(device, "/dev/fpga1".to_owned());
        assert_eq!(page.path(), "/dev/fpga1");
        page.write(Register::RequestOpcode, 9);
        assert_eq!(page.read(Register::RequestOpcode), 9);
    }

    #[test]
    fn clones_alias_the_same_registers() {
        let vendor = Keypair::from_seed(&[1u8; 32]);
        let device = Arc::new(Mutex::new(TnicDevice::for_tests(
            DeviceId(2),
            vendor.verifying,
        )));
        let a = MappedRegsPage::new(device, "/dev/fpga2".to_owned());
        let b = a.clone();
        a.write(Register::RequestAddr, 1234);
        assert_eq!(b.read(Register::RequestAddr), 1234);
    }
}
