//! The TNIC-OS library (paper §5.2).
//!
//! Each TNIC device is represented by a `tnic-process` object — not a
//! scheduling entity, but a handle managed by the OS library that acquires a
//! lock on the device's REG pages so concurrent applications access the
//! hardware in isolation. Requests are scheduled FIFO per device.

use crate::regs::MappedRegsPage;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use tnic_device::regs::Register;
use tnic_device::types::{QueuePairId, SessionId};

/// A request posted to the device through the OS library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostedRequest {
    /// Which queue pair the request targets.
    pub qp: QueuePairId,
    /// The attestation session to use.
    pub session: SessionId,
    /// The payload to send.
    pub payload: Vec<u8>,
}

/// The `tnic-process` object: a lockable handle over one device's REG pages.
#[derive(Debug, Clone)]
pub struct TnicProcess {
    regs: Arc<Mutex<MappedRegsPage>>,
    pending: Arc<Mutex<VecDeque<PostedRequest>>>,
}

impl TnicProcess {
    /// Wraps a mapped register page into a process handle.
    #[must_use]
    pub fn new(regs: MappedRegsPage) -> Self {
        TnicProcess {
            regs: Arc::new(Mutex::new(regs)),
            pending: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Enqueues a request; the doorbell is rung while holding the REG-page
    /// lock so concurrent posters cannot interleave register writes.
    pub fn post(&self, request: PostedRequest) {
        {
            let regs = self.regs.lock();
            regs.write(Register::RequestQp, u64::from(request.qp.0));
            regs.write(Register::RequestSession, u64::from(request.session.0));
            regs.write(Register::RequestLen, request.payload.len() as u64);
            regs.write(Register::Doorbell, 1);
        }
        self.pending.lock().push_back(request);
    }

    /// Removes the next request to execute (FIFO order).
    pub fn next_request(&self) -> Option<PostedRequest> {
        self.pending.lock().pop_front()
    }

    /// Number of requests waiting to be executed.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.lock().len()
    }

    /// Runs `f` with exclusive access to the mapped register page.
    pub fn with_regs<R>(&self, f: impl FnOnce(&MappedRegsPage) -> R) -> R {
        let regs = self.regs.lock();
        f(&regs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::TnicDriver;
    use tnic_crypto::ed25519::Keypair;
    use tnic_device::device::TnicDevice;
    use tnic_device::types::DeviceId;

    fn process() -> TnicProcess {
        let vendor = Keypair::from_seed(&[1u8; 32]);
        let driver = TnicDriver::probe(TnicDevice::for_tests(DeviceId(1), vendor.verifying));
        TnicProcess::new(driver.map_regs())
    }

    fn request(n: u8) -> PostedRequest {
        PostedRequest {
            qp: QueuePairId(1),
            session: SessionId(1),
            payload: vec![n; 8],
        }
    }

    #[test]
    fn requests_are_fifo() {
        let proc = process();
        proc.post(request(1));
        proc.post(request(2));
        proc.post(request(3));
        assert_eq!(proc.pending(), 3);
        assert_eq!(proc.next_request().unwrap().payload[0], 1);
        assert_eq!(proc.next_request().unwrap().payload[0], 2);
        assert_eq!(proc.next_request().unwrap().payload[0], 3);
        assert!(proc.next_request().is_none());
    }

    #[test]
    fn posting_writes_request_registers() {
        let proc = process();
        proc.post(PostedRequest {
            qp: QueuePairId(7),
            session: SessionId(3),
            payload: vec![0; 99],
        });
        proc.with_regs(|regs| {
            assert_eq!(regs.read(Register::RequestQp), 7);
            assert_eq!(regs.read(Register::RequestSession), 3);
            assert_eq!(regs.read(Register::RequestLen), 99);
        });
    }

    #[test]
    fn clones_share_the_queue() {
        let proc = process();
        let clone = proc.clone();
        proc.post(request(9));
        assert_eq!(clone.pending(), 1);
        assert_eq!(clone.next_request().unwrap().payload[0], 9);
        assert_eq!(proc.pending(), 0);
    }

    #[test]
    fn concurrent_posting_is_serialised() {
        let proc = process();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let p = proc.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        p.post(request(i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(proc.pending(), 200);
    }
}
