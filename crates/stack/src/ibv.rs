//! The user-space RDMA ("ibv") library (paper §5.2).
//!
//! Holds the software half of the RDMA protocol: queue-pair bookkeeping,
//! allocation of the DMA-eligible ibv memory in the huge-page area,
//! registration of that memory with the device, out-of-band synchronisation of
//! connection metadata with the peer, and the post/poll data path that drives
//! the device through the mapped register page.

use crate::driver::SharedDevice;
use crate::regs::MappedRegsPage;
use std::collections::HashMap;
use tnic_device::attestation::AttestedMessage;
use tnic_device::device::ReceiveOutcome;
use tnic_device::dma::DmaRegion;
use tnic_device::error::DeviceError;
use tnic_device::regs::Register;
use tnic_device::roce::packet::RocePacket;
use tnic_device::roce::qp::CompletionEntry;
use tnic_device::types::{Ipv4Addr, MacAddr, QueuePairId, SessionId};
use tnic_sim::time::{SimDuration, SimInstant};

/// A registered, DMA-eligible memory region (the "ibv memory"), allocated in
/// the huge-page area and mapped into the application's address space.
#[derive(Debug)]
pub struct IbvMemory {
    region: DmaRegion,
    lkey: u32,
    rkey: u32,
    registered: bool,
}

impl IbvMemory {
    /// Local access key.
    #[must_use]
    pub fn lkey(&self) -> u32 {
        self.lkey
    }

    /// Remote access key advertised to peers.
    #[must_use]
    pub fn rkey(&self) -> u32 {
        self.rkey
    }

    /// Whether the memory has been registered with the device.
    #[must_use]
    pub fn is_registered(&self) -> bool {
        self.registered
    }

    /// Length of the region in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.region.len()
    }

    /// Returns `true` if the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }

    /// Writes application data into the region.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::DmaOutOfBounds`] on overflow.
    pub fn write(&mut self, offset: usize, data: &[u8]) -> Result<(), DeviceError> {
        self.region.write(offset, data)
    }

    /// Reads application data from the region.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::DmaOutOfBounds`] on overflow.
    pub fn read(&self, offset: usize, len: usize) -> Result<Vec<u8>, DeviceError> {
        self.region.read(offset, len)
    }
}

/// Connection metadata exchanged out of band by `ibv_sync()` (queue-pair
/// numbers, addresses, rkeys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IbvConnectionInfo {
    /// The peer's IP address.
    pub ip: Ipv4Addr,
    /// The peer's MAC address.
    pub mac: MacAddr,
    /// The peer's queue-pair number.
    pub qp: QueuePairId,
    /// The peer's remote access key.
    pub rkey: u32,
    /// The shared session (attestation key slot) for this connection.
    pub session: SessionId,
}

/// A software queue pair: the ibv struct created by `ibv_qp_conn()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IbvQueuePair {
    /// The local queue-pair number.
    pub local_qp: QueuePairId,
    /// The attestation session bound to this connection.
    pub session: SessionId,
    /// The peer's connection information (filled in by `ibv_sync`).
    pub remote: Option<IbvConnectionInfo>,
}

/// The per-host ibv context: device handle, register mapping, ibv memory and
/// queue pairs.
#[derive(Debug)]
pub struct IbvContext {
    device: SharedDevice,
    regs: MappedRegsPage,
    memory: Option<IbvMemory>,
    queue_pairs: HashMap<QueuePairId, IbvQueuePair>,
    next_key: u32,
}

impl IbvContext {
    /// Creates a context over a mapped register page.
    #[must_use]
    pub fn new(regs: MappedRegsPage) -> Self {
        IbvContext {
            device: regs.device(),
            regs,
            memory: None,
            queue_pairs: HashMap::new(),
            next_key: 1,
        }
    }

    /// `ibv_qp_conn()`: creates the ibv struct for one connection.
    pub fn qp_conn(&mut self, local_qp: QueuePairId, session: SessionId) -> IbvQueuePair {
        let qp = IbvQueuePair {
            local_qp,
            session,
            remote: None,
        };
        self.queue_pairs.insert(local_qp, qp);
        qp
    }

    /// `alloc_mem()`: allocates the DMA-eligible ibv memory.
    pub fn alloc_mem(&mut self, len: usize) -> &mut IbvMemory {
        let lkey = self.next_key;
        let rkey = self.next_key + 1;
        self.next_key += 2;
        self.memory = Some(IbvMemory {
            region: DmaRegion::new(len),
            lkey,
            rkey,
            registered: false,
        });
        self.memory.as_mut().expect("just allocated")
    }

    /// `init_lqueue()`: registers the ibv memory with the TNIC hardware.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::DmaOutOfBounds`] if no memory has been allocated.
    pub fn init_lqueue(&mut self) -> Result<(), DeviceError> {
        let memory = self.memory.as_mut().ok_or(DeviceError::DmaOutOfBounds)?;
        memory.registered = true;
        self.regs
            .write(Register::RequestAddr, u64::from(memory.lkey));
        self.regs.write(Register::RequestLen, memory.len() as u64);
        Ok(())
    }

    /// The local connection information advertised to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::DmaOutOfBounds`] if the ibv memory has not been
    /// allocated and registered yet.
    pub fn local_info(&self, local_qp: QueuePairId) -> Result<IbvConnectionInfo, DeviceError> {
        let memory = self.memory.as_ref().ok_or(DeviceError::DmaOutOfBounds)?;
        let qp = self
            .queue_pairs
            .get(&local_qp)
            .ok_or(DeviceError::UnknownQueuePair(local_qp))?;
        let dev = self.device.lock();
        Ok(IbvConnectionInfo {
            ip: dev.config().ip_addr,
            mac: dev.config().mac_addr,
            qp: local_qp,
            rkey: memory.rkey(),
            session: qp.session,
        })
    }

    /// `ibv_sync()`: installs the peer's connection information (exchanged out
    /// of band) and creates the hardware queue pair towards it.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownQueuePair`] if `local_qp` was never
    /// created with [`IbvContext::qp_conn`].
    pub fn sync(
        &mut self,
        local_qp: QueuePairId,
        peer: IbvConnectionInfo,
    ) -> Result<(), DeviceError> {
        let qp = self
            .queue_pairs
            .get_mut(&local_qp)
            .ok_or(DeviceError::UnknownQueuePair(local_qp))?;
        qp.remote = Some(peer);
        let mut dev = self.device.lock();
        dev.add_peer(peer.ip, peer.mac);
        dev.create_queue_pair(local_qp, peer.ip, peer.qp);
        Ok(())
    }

    /// Posts an attested send on `local_qp`, driving the device through the
    /// control registers and returning the packet to inject into the fabric
    /// along with the host+device latency.
    ///
    /// # Errors
    ///
    /// Propagates device errors (unknown session/queue pair, ARP miss).
    pub fn post_send(
        &mut self,
        local_qp: QueuePairId,
        payload: &[u8],
        now: SimInstant,
    ) -> Result<(RocePacket, SimDuration), DeviceError> {
        let qp = self
            .queue_pairs
            .get(&local_qp)
            .ok_or(DeviceError::UnknownQueuePair(local_qp))?;
        self.regs.write(Register::RequestQp, u64::from(local_qp.0));
        self.regs
            .write(Register::RequestSession, u64::from(qp.session.0));
        self.regs.write(Register::RequestLen, payload.len() as u64);
        self.regs.write(Register::Doorbell, 1);
        let mut dev = self.device.lock();
        dev.send_attested(local_qp, qp.session, payload, now)
    }

    /// Handles a packet arriving from the fabric for `local_qp`.
    ///
    /// # Errors
    ///
    /// Propagates attestation and transport errors.
    pub fn on_packet(
        &mut self,
        local_qp: QueuePairId,
        packet: &RocePacket,
        now: SimInstant,
    ) -> Result<ReceiveOutcome, DeviceError> {
        self.device.lock().receive_packet(local_qp, packet, now)
    }

    /// `poll()`: drains completion entries from the device.
    pub fn poll(&mut self) -> Vec<CompletionEntry> {
        self.device.lock().poll_completions()
    }

    /// `local_send()`: generates an attested message without transmitting it.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn local_send(
        &mut self,
        session: SessionId,
        payload: &[u8],
    ) -> Result<(AttestedMessage, SimDuration), DeviceError> {
        self.device.lock().local_send(session, payload)
    }

    /// `local_verify()`: verifies the binding of an attested message.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn local_verify(&mut self, message: &AttestedMessage) -> Result<SimDuration, DeviceError> {
        self.device.lock().local_verify(message)
    }

    /// The queue pairs created on this context.
    #[must_use]
    pub fn queue_pairs(&self) -> Vec<IbvQueuePair> {
        self.queue_pairs.values().copied().collect()
    }

    /// Shared access to the ibv memory, if allocated.
    #[must_use]
    pub fn memory(&self) -> Option<&IbvMemory> {
        self.memory.as_ref()
    }

    /// Mutable access to the ibv memory, if allocated.
    pub fn memory_mut(&mut self) -> Option<&mut IbvMemory> {
        self.memory.as_mut()
    }

    /// The underlying shared device handle.
    #[must_use]
    pub fn device(&self) -> SharedDevice {
        self.device.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::TnicDriver;
    use tnic_crypto::ed25519::Keypair;
    use tnic_device::device::TnicDevice;
    use tnic_device::types::DeviceId;

    fn context(id: u32) -> IbvContext {
        let vendor = Keypair::from_seed(&[1u8; 32]);
        let mut device = TnicDevice::for_tests(DeviceId(id), vendor.verifying);
        device.provision_session(SessionId(1), [5u8; 32]);
        let driver = TnicDriver::probe(device);
        IbvContext::new(driver.map_regs())
    }

    fn connected_pair() -> (IbvContext, IbvContext) {
        let mut a = context(1);
        let mut b = context(2);
        a.qp_conn(QueuePairId(1), SessionId(1));
        b.qp_conn(QueuePairId(2), SessionId(1));
        a.alloc_mem(4096);
        b.alloc_mem(4096);
        a.init_lqueue().unwrap();
        b.init_lqueue().unwrap();
        let a_info = a.local_info(QueuePairId(1)).unwrap();
        let b_info = b.local_info(QueuePairId(2)).unwrap();
        a.sync(QueuePairId(1), b_info).unwrap();
        b.sync(QueuePairId(2), a_info).unwrap();
        (a, b)
    }

    #[test]
    fn initialization_sequence_matches_table1() {
        let (a, b) = connected_pair();
        assert!(a.memory().unwrap().is_registered());
        assert!(b.memory().unwrap().is_registered());
        assert_eq!(a.queue_pairs().len(), 1);
        assert!(a.queue_pairs()[0].remote.is_some());
    }

    #[test]
    fn post_send_then_receive_delivers_verified_message() {
        let (mut a, mut b) = connected_pair();
        let (packet, cost) = a
            .post_send(QueuePairId(1), b"request via ibv", SimInstant::EPOCH)
            .unwrap();
        assert!(cost > SimDuration::ZERO);
        let outcome = b
            .on_packet(QueuePairId(2), &packet, SimInstant::EPOCH)
            .unwrap();
        assert_eq!(outcome.delivered.unwrap().payload, b"request via ibv");
        // Completion reaches the sender once the ACK flows back.
        let ack = outcome.response.unwrap();
        a.on_packet(QueuePairId(1), &ack, SimInstant::EPOCH)
            .unwrap();
        assert_eq!(a.poll().len(), 1);
    }

    #[test]
    fn local_send_and_verify_via_context() {
        let (mut a, mut b) = connected_pair();
        let (msg, _) = a.local_send(SessionId(1), b"log entry").unwrap();
        b.local_verify(&msg).unwrap();
    }

    #[test]
    fn ibv_memory_read_write() {
        let mut ctx = context(5);
        let mem = ctx.alloc_mem(128);
        mem.write(0, b"buffer contents").unwrap();
        assert_eq!(mem.read(0, 6).unwrap(), b"buffer");
        assert_eq!(mem.len(), 128);
        assert!(!mem.is_registered());
    }

    #[test]
    fn init_lqueue_without_alloc_fails() {
        let mut ctx = context(6);
        assert!(ctx.init_lqueue().is_err());
    }

    #[test]
    fn sync_requires_existing_qp() {
        let mut a = context(7);
        a.alloc_mem(64);
        let info = IbvConnectionInfo {
            ip: Ipv4Addr::new(10, 0, 0, 9),
            mac: MacAddr::BROADCAST,
            qp: QueuePairId(9),
            rkey: 1,
            session: SessionId(1),
        };
        assert!(matches!(
            a.sync(QueuePairId(1), info),
            Err(DeviceError::UnknownQueuePair(_))
        ));
    }
}
