//! The TNIC software network stack (paper §5, Figure 4).
//!
//! The stack is the middle layer between the programming API (`tnic-core`) and
//! the hardware model (`tnic-device`). It mirrors the paper's structure:
//!
//! * [`driver`] — the TNIC driver: configures the device's static
//!   configuration registers at initialisation and exposes the device as a
//!   pseudo-device whose register page is mapped into user space.
//! * [`regs`] — the mapped REG pages giving the application direct,
//!   kernel-bypass access to the device control path.
//! * [`ibv`] — the user-space RDMA ("ibv") library: queue-pair structures,
//!   ibv memory allocation and registration, out-of-band synchronisation and
//!   the post/poll data path.
//! * [`oslib`] — the TNIC-OS library: `tnic-process` handles, REG-page
//!   locking for isolated access and request scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod ibv;
pub mod oslib;
pub mod regs;

pub use driver::{SharedDevice, TnicDriver};
pub use ibv::IbvContext;
pub use regs::MappedRegsPage;
